/**
 * @file
 * Deterministic, fast pseudo-random number generation (xoshiro256**).
 *
 * Every stochastic component of the library takes an explicit Rng so that
 * experiments are reproducible from a single seed. The generator passes
 * BigCrush and is much faster than std::mt19937_64.
 */

#ifndef BEER_UTIL_RNG_HH
#define BEER_UTIL_RNG_HH

#include <cstdint>
#include <utility>
#include <vector>

namespace beer::util
{

/**
 * xoshiro256** PRNG with convenience distributions used across the
 * library (uniform ints/reals, Bernoulli, binomial, normal, geometric).
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /**
     * Next raw 64-bit output. Inline: one draw per sampled error
     * cell makes this the single most-called function in the
     * simulation engine's hot loop.
     */
    std::uint64_t next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) via Lemire's method; bound > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with success probability @p p. */
    bool bernoulli(double p);

    /**
     * Binomial(n, p) sample.
     *
     * Uses inversion for small n*p and a normal approximation with
     * correction for large n*p; exact enough for Monte-Carlo error
     * injection.
     */
    std::uint64_t binomial(std::uint64_t n, double p);

    /** Standard normal sample (Box-Muller, cached pair). */
    double normal();

    /**
     * Geometric sample: number of failures before the first success with
     * success probability @p p (support {0, 1, ...}).
     */
    std::uint64_t geometric(double p);

    /** Log-normal sample with the underlying normal's mu/sigma. */
    double logNormal(double mu, double sigma);

    /** Fork a statistically independent child stream. */
    Rng fork();

  private:
    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

/**
 * Invoke fn(i) for every success index i in [0, total), ascending,
 * with gaps drawn from @p gaps (any Geometric(p) sampler callable as
 * gaps(rng)): the skip-sampling equivalent of `for i < total: if
 * rng.bernoulli(p) fn(i)`, at O(successes) cost. Shared by the gap
 * samplers' forEach methods so the termination/overflow logic exists
 * once.
 */
template <typename GapSampler, typename Fn>
void
forEachSuccess(const GapSampler &gaps, Rng &rng, std::uint64_t total,
               Fn &&fn)
{
    std::uint64_t i = gaps(rng);
    while (i < total) {
        fn(i);
        const std::uint64_t jump = gaps(rng) + 1;
        if (total - i <= jump)
            break;
        i += jump;
    }
}

/**
 * Geometric(p) sampler with the log(1-p) denominator hoisted, for
 * skip-sampling loops that draw many gaps at the same rate: each call
 * returns the number of failures before the next success. Gaps are
 * clamped to 2^62 so callers can add 1 to form a jump without
 * overflow (and because casting a huge double is undefined).
 */
class GeometricSkip
{
  public:
    /** @param p success probability in (0, 1]; p == 1 yields all-0 gaps. */
    explicit GeometricSkip(double p);

    std::uint64_t operator()(Rng &rng) const;

    /** forEachSuccess with this sampler's gaps. */
    template <typename Fn>
    void forEach(Rng &rng, std::uint64_t total, Fn &&fn) const
    {
        forEachSuccess(*this, rng, total, std::forward<Fn>(fn));
    }

  private:
    double invLogQ_;
};

/**
 * Geometric(p) sampler optimized for dense skip-sampling loops.
 *
 * GeometricSkip pays a libm log() per gap (~18 cycles); at the
 * simulation engine's default workloads that one call is the largest
 * scalar cost left per simulated word, and it throttles the SIMD
 * backends (Amdahl). This sampler instead draws from an alias table
 * (Vose's method) over the outcomes {0 .. kTail-1} plus a tail
 * sentinel: one raw 64-bit draw picks a table slot from the low bits
 * and a 56-bit threshold uniform from the high bits, so a gap costs a
 * lookup and an integer compare. Hitting the sentinel adds kTail and redraws —
 * geometric distributions are memoryless — which stays cheap as long
 * as the mean gap is well below kTail; below the density cutoff the
 * sampler simply delegates to GeometricSkip, whose cost is then
 * amortized over the huge gaps anyway.
 *
 * The table is built once per construction (~kTail flops), so build
 * one per shard, not per draw. The sampled distribution is
 * Geometric(p) exactly (up to double rounding of the table), and the
 * draw sequence is a pure function of (p, Rng stream) — identical for
 * every SIMD backend, which the engine's cross-backend bit-identity
 * contract relies on.
 */
class GeometricSampler
{
  public:
    /** Outcomes resolved per table draw; tail adds this and redraws. */
    static constexpr std::size_t kTail = 255;

    /** @param p success probability in (0, 1]. */
    explicit GeometricSampler(double p);

    /** Inline: one draw sits on the engine's per-error-cell path. */
    std::uint64_t operator()(Rng &rng) const
    {
        if (!useAlias_)
            return skip_(rng);
        std::uint64_t result = 0;
        while (true) {
            const std::uint64_t r = rng.next();
            // Low 8 bits pick the slot; bits 8..63 form an
            // independent 56-bit threshold uniform.
            const std::size_t slot = (std::size_t)(r & (kSlots - 1));
            const std::size_t g =
                (r >> 8) < threshold_[slot] ? slot : alias_[slot];
            if (g != kTail)
                return result + g;
            result += kTail;
        }
    }

    /** forEachSuccess with this sampler's gaps. */
    template <typename Fn>
    void forEach(Rng &rng, std::uint64_t total, Fn &&fn) const
    {
        forEachSuccess(*this, rng, total, std::forward<Fn>(fn));
    }

    /** True when draws use the alias table (exposed for tests). */
    bool usesAliasTable() const { return useAlias_; }

  private:
    static constexpr std::size_t kSlots = 256;

    bool useAlias_;
    /** log-method fallback for sparse rates (mean gap >> kTail). */
    GeometricSkip skip_;
    /**
     * Keep-slot threshold against a 56-bit uniform, in 8.56
     * fixed-point so a draw is one integer compare (quantizing the
     * table to 2^-56 is far below the double rounding already in it).
     */
    std::uint64_t threshold_[kSlots];
    /** Outcome when the threshold rejects the slot. */
    std::uint16_t alias_[kSlots];
};

/**
 * 64 iid Bernoulli(p) trials per draw, one bit per lane.
 *
 * The batched fill path of the transposed chip needs whole lane
 * masks, not per-cell trials: at high error rates, drawing each cell
 * with the geometric skip sampler costs one Rng draw *per error*,
 * while this sampler resolves 64 cells in an expected ~log2(64) + 2
 * draws regardless of the rate — the crossover is measured by
 * bench/sim_throughput.
 *
 * Algorithm: compare an infinite random binary fraction u against p
 * digit by digit, all 64 lanes in parallel — one next() supplies
 * digit i of every lane's u. A lane resolves at the first digit where
 * u and p differ (u's digit 0, p's 1: success u < p; the reverse:
 * failure), so each draw resolves half the unresolved lanes and the
 * loop ends when none remain (or p's digits run out — doubles have
 * finite expansions — after which u > p for every survivor). The
 * sampled distribution is Bernoulli(p) exactly, the same exactness
 * class as `rng.uniform() < p`.
 */
class BernoulliMask
{
  public:
    /** @param p success probability; clamped to [0, 1]. */
    explicit BernoulliMask(double p);

    /** Lane mask with each bit set independently with probability p. */
    std::uint64_t draw(Rng &rng) const
    {
        if (digits_.empty())
            return constant_;
        std::uint64_t unresolved = ~(std::uint64_t)0;
        std::uint64_t result = 0;
        for (const std::uint8_t digit : digits_) {
            const std::uint64_t r = rng.next();
            if (digit) {
                result |= unresolved & ~r;
                unresolved &= r;
            } else {
                unresolved &= ~r;
            }
            if (!unresolved)
                break;
        }
        return result;
    }

  private:
    /** Binary digits of p's fraction, most significant first; empty
     * for the degenerate rates p <= 0 and p >= 1. */
    std::vector<std::uint8_t> digits_;
    /** Mask returned for the degenerate rates. */
    std::uint64_t constant_ = 0;
};

} // namespace beer::util

#endif // BEER_UTIL_RNG_HH
