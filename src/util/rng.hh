/**
 * @file
 * Deterministic, fast pseudo-random number generation (xoshiro256**).
 *
 * Every stochastic component of the library takes an explicit Rng so that
 * experiments are reproducible from a single seed. The generator passes
 * BigCrush and is much faster than std::mt19937_64.
 */

#ifndef BEER_UTIL_RNG_HH
#define BEER_UTIL_RNG_HH

#include <cstdint>

namespace beer::util
{

/**
 * xoshiro256** PRNG with convenience distributions used across the
 * library (uniform ints/reals, Bernoulli, binomial, normal, geometric).
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) via Lemire's method; bound > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with success probability @p p. */
    bool bernoulli(double p);

    /**
     * Binomial(n, p) sample.
     *
     * Uses inversion for small n*p and a normal approximation with
     * correction for large n*p; exact enough for Monte-Carlo error
     * injection.
     */
    std::uint64_t binomial(std::uint64_t n, double p);

    /** Standard normal sample (Box-Muller, cached pair). */
    double normal();

    /**
     * Geometric sample: number of failures before the first success with
     * success probability @p p (support {0, 1, ...}).
     */
    std::uint64_t geometric(double p);

    /** Log-normal sample with the underlying normal's mu/sigma. */
    double logNormal(double mu, double sigma);

    /** Fork a statistically independent child stream. */
    Rng fork();

  private:
    std::uint64_t s_[4];
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

/**
 * Geometric(p) sampler with the log(1-p) denominator hoisted, for
 * skip-sampling loops that draw many gaps at the same rate: each call
 * returns the number of failures before the next success. Gaps are
 * clamped to 2^62 so callers can add 1 to form a jump without
 * overflow (and because casting a huge double is undefined).
 */
class GeometricSkip
{
  public:
    /** @param p success probability in (0, 1]; p == 1 yields all-0 gaps. */
    explicit GeometricSkip(double p);

    std::uint64_t operator()(Rng &rng) const;

    /**
     * Invoke fn(i) for every success index i in [0, total), ascending:
     * the skip-sampling equivalent of `for i < total: if
     * rng.bernoulli(p) fn(i)`, at O(successes) cost.
     */
    template <typename Fn>
    void forEach(Rng &rng, std::uint64_t total, Fn &&fn) const
    {
        std::uint64_t i = (*this)(rng);
        while (i < total) {
            fn(i);
            const std::uint64_t jump = (*this)(rng) + 1;
            if (total - i <= jump)
                break;
            i += jump;
        }
    }

  private:
    double invLogQ_;
};

} // namespace beer::util

#endif // BEER_UTIL_RNG_HH
