#include "util/signal.hh"

#include <csignal>
#include <fcntl.h>
#include <unistd.h>

#include <atomic>

#include "util/logging.hh"

namespace beer::util
{

namespace
{

std::atomic<bool> shutdownFlag{false};
// Self-pipe; write end is signal-handler-async-safe (write(2) only).
int wakePipe[2] = {-1, -1};
bool installed = false;

void
handleShutdownSignal(int signo)
{
    if (shutdownFlag.exchange(true)) {
        // Second signal: restore the default disposition and re-raise,
        // so a stuck shutdown can still be interrupted.
        std::signal(signo, SIG_DFL);
        raise(signo);
        return;
    }
    if (wakePipe[1] >= 0) {
        const char byte = 1;
        // Best-effort: a full pipe still leaves the fd readable.
        (void)!write(wakePipe[1], &byte, 1);
    }
}

} // anonymous namespace

void
installShutdownHandler()
{
    if (installed)
        return;
    if (pipe(wakePipe) != 0) {
        warn("shutdown handler: pipe() failed; poll loops will rely "
             "on EINTR only");
        wakePipe[0] = wakePipe[1] = -1;
    } else {
        for (int fd : wakePipe) {
            fcntl(fd, F_SETFL, O_NONBLOCK);
            fcntl(fd, F_SETFD, FD_CLOEXEC);
        }
    }

    struct sigaction action = {};
    action.sa_handler = handleShutdownSignal;
    sigemptyset(&action.sa_mask);
    // No SA_RESTART: blocking syscalls return EINTR so loops re-check
    // shutdownRequested().
    action.sa_flags = 0;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
    installed = true;
}

bool
shutdownRequested()
{
    return shutdownFlag.load(std::memory_order_relaxed);
}

int
shutdownWakeFd()
{
    return wakePipe[0];
}

void
requestShutdown()
{
    if (shutdownFlag.exchange(true))
        return;
    if (wakePipe[1] >= 0) {
        const char byte = 1;
        (void)!write(wakePipe[1], &byte, 1);
    }
}

void
clearShutdownRequest()
{
    shutdownFlag.store(false);
    if (wakePipe[0] >= 0) {
        char buf[16];
        while (read(wakePipe[0], buf, sizeof buf) > 0) {
        }
    }
}

} // namespace beer::util
