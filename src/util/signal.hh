/**
 * @file
 * Shared graceful-shutdown handling for long-running tools.
 *
 * One process-wide SIGINT/SIGTERM handler sets a flag and writes one
 * byte to a self-pipe, so both polling loops (check
 * shutdownRequested() between work units, as the measurement loop and
 * beer_profile_gen do) and fd-driven loops (poll() on
 * shutdownWakeFd() alongside their own fds, as beer_serve's HTTP
 * accept loop does) observe the request without races or EINTR
 * gymnastics. Handlers are installed without SA_RESTART on purpose:
 * blocking accept()/read() calls return EINTR and their loops re-check
 * the flag.
 *
 * The flag is process-wide and latches; requestShutdown() sets it
 * programmatically (tests, internal shutdown paths) and
 * clearShutdownRequest() re-arms it (tests only — real tools exit).
 */

#ifndef BEER_UTIL_SIGNAL_HH
#define BEER_UTIL_SIGNAL_HH

namespace beer::util
{

/**
 * Install the SIGINT/SIGTERM handler (idempotent). A second signal
 * after the first re-raises the default disposition, so a wedged
 * process can still be killed with a second Ctrl-C.
 */
void installShutdownHandler();

/** True once a shutdown signal arrived or requestShutdown() ran. */
bool shutdownRequested();

/**
 * Read end of the shutdown self-pipe for poll()/select() loops;
 * becomes readable when shutdown is requested. -1 until
 * installShutdownHandler() has run.
 */
int shutdownWakeFd();

/** Request shutdown programmatically (same effect as a signal). */
void requestShutdown();

/** Re-arm after requestShutdown(), for tests. */
void clearShutdownRequest();

} // namespace beer::util

#endif // BEER_UTIL_SIGNAL_HH
