#include "util/simd.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace beer::util::simd
{

const char *
backendName(Backend backend)
{
    switch (backend) {
      case Backend::Auto:
        return "auto";
      case Backend::U64x1:
        return "u64x1";
      case Backend::U64x2:
        return "u64x2";
      case Backend::U64x4:
        return "u64x4";
      case Backend::U64x8:
        return "u64x8";
    }
    return "?";
}

std::optional<Backend>
parseBackend(const std::string &text)
{
    if (text == "auto")
        return Backend::Auto;
    if (text == "u64x1")
        return Backend::U64x1;
    if (text == "u64x2")
        return Backend::U64x2;
    if (text == "u64x4")
        return Backend::U64x4;
    if (text == "u64x8")
        return Backend::U64x8;
    return std::nullopt;
}

std::size_t
backendWords(Backend backend)
{
    switch (backend) {
      case Backend::U64x1:
        return 1;
      case Backend::U64x2:
        return 2;
      case Backend::U64x4:
        return 4;
      case Backend::U64x8:
        return 8;
      case Backend::Auto:
        break;
    }
    return 0;
}

std::size_t
backendLanes(Backend backend)
{
    return 64 * backendWords(backend);
}

bool
cpuHasAvx2()
{
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
    static const bool has = __builtin_cpu_supports("avx2");
    return has;
#else
    return false;
#endif
}

bool
cpuHasAvx512f()
{
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
    static const bool has = __builtin_cpu_supports("avx512f");
    return has;
#else
    return false;
#endif
}

bool
cpuHasAvx512Vpopcntdq()
{
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
    static const bool has = __builtin_cpu_supports("avx512vpopcntdq");
    return has;
#else
    return false;
#endif
}

bool
cpuHasNeon()
{
    // Advanced SIMD is architecturally mandatory on AArch64; 32-bit
    // ARM hosts would need a runtime probe and just use the portable
    // kernels instead.
#if defined(__aarch64__)
    return true;
#else
    return false;
#endif
}

Backend
envBackend()
{
    // Re-read every call (cheap relative to a simulate call) so tests
    // can force widths with setenv() without process restarts.
    const char *value = std::getenv("BEER_SIMD");
    if (!value || !*value)
        return Backend::Auto;
    const auto parsed = parseBackend(value);
    if (!parsed)
        fatal("BEER_SIMD='%s' is not a SIMD backend (expected auto, "
              "u64x1, u64x2, u64x4, or u64x8)",
              value);
    return *parsed;
}

Backend
requestedBackend(Backend requested)
{
    if (requested != Backend::Auto)
        return requested;
    return envBackend();
}

} // namespace beer::util::simd
