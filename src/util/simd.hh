/**
 * @file
 * SIMD backend selection for the bitsliced simulation engine.
 *
 * The engine's hot kernels are generic over an abstract SIMD word of
 * W * 64 lanes (util/simd_vec.hh); this header names the widths the
 * library ships and decides which one a run uses:
 *
 *  - Backend::U64x1: one uint64 per lane mask (the PR 3 engine);
 *  - Backend::U64x2: 128-bit groups, NEON intrinsics on aarch64
 *    hosts, a portable 2 x uint64 fallback otherwise;
 *  - Backend::U64x4: 256-bit groups, AVX2 intrinsics when the host
 *    supports them, a portable 4 x uint64 fallback otherwise;
 *  - Backend::U64x8: 512-bit groups, AVX-512F intrinsics or a portable
 *    8 x uint64 fallback.
 *
 * Selection order: an explicit SimConfig::simdBackend wins, then the
 * BEER_SIMD environment variable (u64x1 | u64x4 | u64x8 | auto), then
 * CPUID auto-detection of the widest native kernel. Forcing a width
 * the CPU cannot run natively is always legal — the portable fallback
 * produces bit-identical statistics — which is what makes every width
 * testable on any host.
 */

#ifndef BEER_UTIL_SIMD_HH
#define BEER_UTIL_SIMD_HH

#include <cstddef>
#include <optional>
#include <string>

namespace beer::util::simd
{

/** Lane-mask width of the bitsliced engine; see file docs. */
enum class Backend
{
    /** Resolve via BEER_SIMD, then CPUID (widest native kernel). */
    Auto,
    /** 64 lanes per group, one uint64 per codeword position. */
    U64x1,
    /** 128 lanes per group (NEON when native). */
    U64x2,
    /** 256 lanes per group (AVX2 when native). */
    U64x4,
    /** 512 lanes per group (AVX-512F when native). */
    U64x8,
};

/** Canonical lowercase name ("auto", "u64x1", "u64x2", ...). */
const char *backendName(Backend backend);

/** Parse a backend name; std::nullopt on anything unrecognized. */
std::optional<Backend> parseBackend(const std::string &text);

/** 64-bit words per lane group (Auto reports 0). */
std::size_t backendWords(Backend backend);

/** Lanes (simulated words) per group: 64 * backendWords. */
std::size_t backendLanes(Backend backend);

/** True iff the CPU executes AVX2 instructions. */
bool cpuHasAvx2();

/** True iff the CPU executes AVX-512 Foundation instructions. */
bool cpuHasAvx512f();

/**
 * True iff the CPU executes VPOPCNTDQ (vector popcount) instructions;
 * a separate CPUID bit from AVX-512F, present only on Ice Lake and
 * newer, so the stats-reduction kernel gates on it independently.
 */
bool cpuHasAvx512Vpopcntdq();

/** True iff the CPU executes Advanced SIMD (NEON) instructions. */
bool cpuHasNeon();

/**
 * Backend requested by the BEER_SIMD environment variable, re-read on
 * every call so tests can flip it with setenv(); Auto when the
 * variable is unset or "auto". Fatal on unparseable values, so a typo
 * in a sweep script cannot silently benchmark the wrong engine.
 */
Backend envBackend();

/**
 * Collapse a configured backend to a concrete width: @p requested if
 * explicit, else the BEER_SIMD override, else Auto (the caller — see
 * sim::engineKernel — picks the widest native width for Auto, because
 * only the dispatch layer knows which kernels were compiled in).
 */
Backend requestedBackend(Backend requested);

} // namespace beer::util::simd

#endif // BEER_UTIL_SIMD_HH
