/**
 * @file
 * Abstract SIMD words for the bitsliced kernels.
 *
 * Vec<W, Isa> is a register of W 64-bit lane masks with exactly the
 * operations the decode kernel needs: load/store against plain uint64
 * buffers, XOR / AND / OR, and-not, all-ones complement, and an
 * any-bit-set test. The primary template is portable C++ over a
 * uint64 array; the NEON (W = 2), AVX2 (W = 4) and AVX-512F (W = 8)
 * specializations map one Vec to one q/ymm/zmm register.
 *
 * ISA tags keep instantiations compiled under different target flags
 * in distinct types, so the intrinsic translation units
 * (sim/engine_avx2.cc, sim/engine_avx512.cc — the only ones built
 * with -mavx2 / -mavx512f — and sim/engine_neon.cc, whose NEON support
 * is baseline on aarch64) can never collide with the portable
 * fallbacks at link time. The intrinsic tags only exist when the
 * including TU is compiled with the matching target flag; nothing
 * else may name them.
 *
 * Lane masks live in ordinary memory between kernel steps (the batch
 * fill path sets single bits, which wide registers do badly), so Vec
 * deliberately has no per-lane accessors: transpose-side code indexes
 * the underlying uint64 buffer directly.
 */

#ifndef BEER_UTIL_SIMD_VEC_HH
#define BEER_UTIL_SIMD_VEC_HH

#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#endif

namespace beer::util::simd
{

/** Tag for the portable uint64-array implementation. */
struct GenericIsa
{
};

/** Portable W x 64-bit SIMD word; see file docs. */
template <std::size_t W, typename Isa = GenericIsa>
struct Vec
{
    static constexpr std::size_t kWords = W;

    std::uint64_t w[W];

    static Vec zero()
    {
        Vec v;
        for (std::size_t i = 0; i < W; ++i)
            v.w[i] = 0;
        return v;
    }

    static Vec load(const std::uint64_t *p)
    {
        Vec v;
        std::memcpy(v.w, p, W * sizeof(std::uint64_t));
        return v;
    }

    void store(std::uint64_t *p) const
    {
        std::memcpy(p, w, W * sizeof(std::uint64_t));
    }

    /** ~a & b (maps to one instruction on every target ISA). */
    static Vec andnot(Vec a, Vec b)
    {
        Vec v;
        for (std::size_t i = 0; i < W; ++i)
            v.w[i] = ~a.w[i] & b.w[i];
        return v;
    }

    bool any() const
    {
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < W; ++i)
            acc |= w[i];
        return acc != 0;
    }

    friend Vec operator^(Vec a, Vec b)
    {
        Vec v;
        for (std::size_t i = 0; i < W; ++i)
            v.w[i] = a.w[i] ^ b.w[i];
        return v;
    }

    friend Vec operator&(Vec a, Vec b)
    {
        Vec v;
        for (std::size_t i = 0; i < W; ++i)
            v.w[i] = a.w[i] & b.w[i];
        return v;
    }

    friend Vec operator|(Vec a, Vec b)
    {
        Vec v;
        for (std::size_t i = 0; i < W; ++i)
            v.w[i] = a.w[i] | b.w[i];
        return v;
    }

    Vec &operator^=(Vec o) { return *this = *this ^ o; }
    Vec &operator&=(Vec o) { return *this = *this & o; }
    Vec &operator|=(Vec o) { return *this = *this | o; }
};

#if defined(__ARM_NEON) || defined(__ARM_NEON__)

/** Tag for the NEON q-register implementation (aarch64 baseline). */
struct NeonIsa
{
};

template <>
struct Vec<2, NeonIsa>
{
    static constexpr std::size_t kWords = 2;

    uint64x2_t v;

    static Vec zero() { return {vdupq_n_u64(0)}; }

    static Vec load(const std::uint64_t *p) { return {vld1q_u64(p)}; }

    void store(std::uint64_t *p) const { vst1q_u64(p, v); }

    static Vec andnot(Vec a, Vec b)
    {
        // vbicq computes b & ~a with this operand order.
        return {vbicq_u64(b.v, a.v)};
    }

    bool any() const
    {
        return (vgetq_lane_u64(v, 0) | vgetq_lane_u64(v, 1)) != 0;
    }

    friend Vec operator^(Vec a, Vec b) { return {veorq_u64(a.v, b.v)}; }

    friend Vec operator&(Vec a, Vec b) { return {vandq_u64(a.v, b.v)}; }

    friend Vec operator|(Vec a, Vec b) { return {vorrq_u64(a.v, b.v)}; }

    Vec &operator^=(Vec o) { return *this = *this ^ o; }
    Vec &operator&=(Vec o) { return *this = *this & o; }
    Vec &operator|=(Vec o) { return *this = *this | o; }
};

#endif // __ARM_NEON

#if defined(__AVX2__)

/** Tag for the AVX2 ymm implementation (only in -mavx2 TUs). */
struct Avx2Isa
{
};

template <>
struct Vec<4, Avx2Isa>
{
    static constexpr std::size_t kWords = 4;

    __m256i v;

    static Vec zero() { return {_mm256_setzero_si256()}; }

    static Vec load(const std::uint64_t *p)
    {
        return {_mm256_loadu_si256((const __m256i *)p)};
    }

    void store(std::uint64_t *p) const
    {
        _mm256_storeu_si256((__m256i *)p, v);
    }

    static Vec andnot(Vec a, Vec b)
    {
        return {_mm256_andnot_si256(a.v, b.v)};
    }

    bool any() const { return !_mm256_testz_si256(v, v); }

    friend Vec operator^(Vec a, Vec b)
    {
        return {_mm256_xor_si256(a.v, b.v)};
    }

    friend Vec operator&(Vec a, Vec b)
    {
        return {_mm256_and_si256(a.v, b.v)};
    }

    friend Vec operator|(Vec a, Vec b)
    {
        return {_mm256_or_si256(a.v, b.v)};
    }

    Vec &operator^=(Vec o) { return *this = *this ^ o; }
    Vec &operator&=(Vec o) { return *this = *this & o; }
    Vec &operator|=(Vec o) { return *this = *this | o; }
};

#endif // __AVX2__

#if defined(__AVX512F__)

/** Tag for the AVX-512F zmm implementation (only in -mavx512f TUs). */
struct Avx512Isa
{
};

template <>
struct Vec<8, Avx512Isa>
{
    static constexpr std::size_t kWords = 8;

    __m512i v;

    static Vec zero() { return {_mm512_setzero_si512()}; }

    static Vec load(const std::uint64_t *p)
    {
        return {_mm512_loadu_si512((const void *)p)};
    }

    void store(std::uint64_t *p) const
    {
        _mm512_storeu_si512((void *)p, v);
    }

    static Vec andnot(Vec a, Vec b)
    {
        return {_mm512_andnot_si512(a.v, b.v)};
    }

    bool any() const { return _mm512_test_epi64_mask(v, v) != 0; }

    friend Vec operator^(Vec a, Vec b)
    {
        return {_mm512_xor_si512(a.v, b.v)};
    }

    friend Vec operator&(Vec a, Vec b)
    {
        return {_mm512_and_si512(a.v, b.v)};
    }

    friend Vec operator|(Vec a, Vec b)
    {
        return {_mm512_or_si512(a.v, b.v)};
    }

    Vec &operator^=(Vec o) { return *this = *this ^ o; }
    Vec &operator&=(Vec o) { return *this = *this & o; }
    Vec &operator|=(Vec o) { return *this = *this | o; }
};

#endif // __AVX512F__

} // namespace beer::util::simd

#endif // BEER_UTIL_SIMD_VEC_HH
