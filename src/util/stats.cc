#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace beer::util
{

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / (double)xs.size();
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double mu = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - mu) * (x - mu);
    return std::sqrt(acc / (double)(xs.size() - 1));
}

double
quantile(std::vector<double> xs, double q)
{
    BEER_ASSERT(!xs.empty());
    BEER_ASSERT(q >= 0.0 && q <= 1.0);
    std::sort(xs.begin(), xs.end());
    const double pos = q * (double)(xs.size() - 1);
    const auto lo = (std::size_t)std::floor(pos);
    const auto hi = (std::size_t)std::ceil(pos);
    const double frac = pos - (double)lo;
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double
median(const std::vector<double> &xs)
{
    return quantile(xs, 0.5);
}

BoxStats
boxStats(const std::vector<double> &xs)
{
    BoxStats out;
    if (xs.empty())
        return out;
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    out.min = sorted.front();
    out.max = sorted.back();
    out.q1 = quantile(sorted, 0.25);
    out.median = quantile(sorted, 0.5);
    out.q3 = quantile(sorted, 0.75);
    return out;
}

BootstrapCi
bootstrapMedianCi(const std::vector<double> &xs, Rng &rng,
                  std::size_t resamples, double confidence)
{
    BootstrapCi out;
    if (xs.empty())
        return out;
    out.median = median(xs);

    std::vector<double> medians;
    medians.reserve(resamples);
    std::vector<double> resample(xs.size());
    for (std::size_t i = 0; i < resamples; ++i) {
        for (auto &value : resample)
            value = xs[rng.below(xs.size())];
        medians.push_back(median(resample));
    }
    const double alpha = 1.0 - confidence;
    out.lo = quantile(medians, alpha / 2.0);
    out.hi = quantile(medians, 1.0 - alpha / 2.0);
    return out;
}

void
Accumulator::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    sum_ += x;
    ++count_;
}

double
Accumulator::min() const
{
    BEER_ASSERT(count_ > 0);
    return min_;
}

double
Accumulator::max() const
{
    BEER_ASSERT(count_ > 0);
    return max_;
}

double
Accumulator::mean() const
{
    return count_ ? sum_ / (double)count_ : 0.0;
}

} // namespace beer::util
