/**
 * @file
 * Statistics helpers used by the benchmark harnesses: summary statistics,
 * quantiles, boxplot tuples, and bootstrap confidence intervals (the paper
 * reports medians with 95% CIs computed via statistical bootstrapping).
 */

#ifndef BEER_UTIL_STATS_HH
#define BEER_UTIL_STATS_HH

#include <cstddef>
#include <vector>

#include "util/rng.hh"

namespace beer::util
{

/** Arithmetic mean; 0 for an empty sample. */
double mean(const std::vector<double> &xs);

/** Sample standard deviation (n-1 denominator); 0 for n < 2. */
double stddev(const std::vector<double> &xs);

/**
 * Quantile via linear interpolation of the sorted sample.
 *
 * @param xs sample (need not be sorted)
 * @param q  quantile in [0, 1]
 */
double quantile(std::vector<double> xs, double q);

/** Median (0.5 quantile). */
double median(const std::vector<double> &xs);

/** Five-number summary used for boxplot-style figure output. */
struct BoxStats
{
    double min = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double max = 0.0;
};

/** Compute the five-number summary of @p xs. */
BoxStats boxStats(const std::vector<double> &xs);

/** A two-sided confidence interval around a bootstrap median. */
struct BootstrapCi
{
    double median = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Percentile-bootstrap CI of the median, as used for the paper's
 * Figure 1 error bars (1000 resamples, 95% by default).
 */
BootstrapCi bootstrapMedianCi(const std::vector<double> &xs, Rng &rng,
                              std::size_t resamples = 1000,
                              double confidence = 0.95);

/** Running min/max/mean/count accumulator. */
class Accumulator
{
  public:
    void add(double x);
    std::size_t count() const { return count_; }
    double min() const;
    double max() const;
    double mean() const;
    double sum() const { return sum_; }

  private:
    std::size_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace beer::util

#endif // BEER_UTIL_STATS_HH
