#include "util/table.hh"

#include <algorithm>
#include <cstdio>

#include "util/logging.hh"

namespace beer::util
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    BEER_ASSERT(!headers_.empty());
}

void
Table::addRow(std::vector<std::string> row)
{
    BEER_ASSERT(row.size() == headers_.size());
    rows_.push_back(std::move(row));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            const std::string &s = row[c];
            const bool quote =
                s.find(',') != std::string::npos ||
                s.find('"') != std::string::npos;
            if (quote) {
                os << '"';
                for (char ch : s) {
                    if (ch == '"')
                        os << '"';
                    os << ch;
                }
                os << '"';
            } else {
                os << s;
            }
            if (c + 1 < row.size())
                os << ',';
        }
        os << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
Table::cell(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

std::string
Table::cell(int v)
{
    return std::to_string(v);
}

std::string
Table::cell(unsigned v)
{
    return std::to_string(v);
}

std::string
Table::cell(long v)
{
    return std::to_string(v);
}

std::string
Table::cell(unsigned long v)
{
    return std::to_string(v);
}

std::string
Table::cell(long long v)
{
    return std::to_string(v);
}

std::string
Table::cell(unsigned long long v)
{
    return std::to_string(v);
}

std::string
Table::fixed(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::sci(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
    return buf;
}

} // namespace beer::util
