/**
 * @file
 * Console table and CSV emission for the benchmark harnesses. Every
 * paper table/figure bench prints a human-readable aligned table (the
 * rows/series the paper reports) and can optionally emit CSV.
 */

#ifndef BEER_UTIL_TABLE_HH
#define BEER_UTIL_TABLE_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace beer::util
{

/**
 * A simple column-aligned table. Collect rows of strings, then print.
 */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the headers. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format each cell with to-string-able values. */
    template <typename... Args>
    void
    addRowOf(const Args &...args)
    {
        addRow({cell(args)...});
    }

    /** Print as an aligned ASCII table. */
    void print(std::ostream &os) const;

    /** Print as CSV (RFC-4180-ish; quotes cells containing commas). */
    void printCsv(std::ostream &os) const;

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numCols() const { return headers_.size(); }

    /** Format helpers. */
    static std::string cell(const std::string &s) { return s; }
    static std::string cell(const char *s) { return s; }
    static std::string cell(double v);
    static std::string cell(int v);
    static std::string cell(unsigned v);
    static std::string cell(long v);
    static std::string cell(unsigned long v);
    static std::string cell(long long v);
    static std::string cell(unsigned long long v);

    /** Fixed-precision double formatting. */
    static std::string fixed(double v, int precision);
    /** Scientific-notation double formatting. */
    static std::string sci(double v, int precision = 2);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace beer::util

#endif // BEER_UTIL_TABLE_HH
