#include "util/thread_pool.hh"

namespace beer::util
{

ThreadPool::ThreadPool(std::size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0)
            num_threads = 1;
    }
    workers_.reserve(num_threads - 1);
    for (std::size_t i = 1; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::runItems(const std::function<void(std::size_t)> &body,
                     std::size_t count)
{
    std::size_t i;
    while ((i = next_.fetch_add(1)) < count) {
        body(i);
        completed_.fetch_add(1);
    }
}

void
ThreadPool::runTask(std::unique_lock<std::mutex> &lock)
{
    std::function<void()> task = std::move(tasks_.front());
    tasks_.pop_front();
    queuedTasks_.fetch_sub(1, std::memory_order_relaxed);
    activeTasks_.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    task();
    lock.lock();
    activeTasks_.fetch_sub(1, std::memory_order_relaxed);
    completedTasks_.fetch_add(1, std::memory_order_relaxed);
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        wake_.wait(lock, [&] {
            return stop_ || generation_ != seen || !tasks_.empty();
        });
        if (stop_)
            return;
        // parallelFor jobs first: their caller is blocked inside
        // parallelFor, while submit()ted tasks have nobody waiting.
        if (generation_ != seen) {
            seen = generation_;
            const std::function<void(std::size_t)> *body = body_;
            const std::size_t count = count_;
            ++running_;
            lock.unlock();
            // A worker that was slow to wake can observe next_ >=
            // count here (the job already finished, possibly before
            // this worker started); runItems then claims nothing and
            // never touches the potentially stale body pointer.
            runItems(*body, count);
            lock.lock();
            --running_;
            done_.notify_all();
            continue;
        }
        runTask(lock);
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (workers_.empty()) {
        activeTasks_.fetch_add(1, std::memory_order_relaxed);
        task();
        activeTasks_.fetch_sub(1, std::memory_order_relaxed);
        completedTasks_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(std::move(task));
        queuedTasks_.fetch_add(1, std::memory_order_relaxed);
    }
    wake_.notify_one();
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;
    if (workers_.empty() || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        body_ = &body;
        count_ = count;
        next_.store(0);
        completed_.store(0);
        ++generation_;
    }
    wake_.notify_all();
    runItems(body, count);
    // Wait until every item has run AND every worker has left
    // runItems: only then is it safe to let `body` go out of scope or
    // publish a new job that resets next_.
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] {
        return completed_.load() >= count_ && running_ == 0;
    });
}

} // namespace beer::util
