#include "util/thread_pool.hh"

#ifdef __linux__
#include <sched.h>
#endif

namespace beer::util
{

namespace
{

/**
 * Drop the calling thread to idle scheduling priority: it then runs
 * only on CPU time no normal-priority thread wants. Entering
 * SCHED_IDLE never needs privileges (leaving it would, which is why
 * this is applied to dedicated pool workers rather than toggled
 * around individual tasks).
 */
void
demoteToIdlePriority()
{
#ifdef __linux__
    sched_param param{};
    sched_setscheduler(0, SCHED_IDLE, &param);
#endif
}

} // anonymous namespace

ThreadPool::ThreadPool(std::size_t num_threads, bool background)
{
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0)
            num_threads = 1;
    }
    workers_.reserve(num_threads - 1);
    for (std::size_t i = 1; i < num_threads; ++i)
        workers_.emplace_back([this, background] {
            if (background)
                demoteToIdlePriority();
            workerLoop();
        });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::runItems(const std::function<void(std::size_t)> &body,
                     std::size_t count)
{
    std::size_t i;
    while ((i = next_.fetch_add(1)) < count) {
        body(i);
        completed_.fetch_add(1);
    }
}

void
ThreadPool::runTask(std::unique_lock<std::mutex> &lock)
{
    std::function<void()> task = std::move(tasks_.front());
    tasks_.pop_front();
    queuedTasks_.fetch_sub(1, std::memory_order_relaxed);
    activeTasks_.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    task();
    lock.lock();
    activeTasks_.fetch_sub(1, std::memory_order_relaxed);
    completedTasks_.fetch_add(1, std::memory_order_relaxed);
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        wake_.wait(lock, [&] {
            return stop_ || generation_ != seen || !tasks_.empty();
        });
        if (stop_)
            return;
        // parallelFor jobs first: their caller is blocked inside
        // parallelFor, while submit()ted tasks have nobody waiting.
        if (generation_ != seen) {
            seen = generation_;
            const std::function<void(std::size_t)> *body = body_;
            const std::size_t count = count_;
            ++running_;
            lock.unlock();
            // A worker that was slow to wake can observe next_ >=
            // count here (the job already finished, possibly before
            // this worker started); runItems then claims nothing and
            // never touches the potentially stale body pointer.
            runItems(*body, count);
            lock.lock();
            --running_;
            done_.notify_all();
            continue;
        }
        runTask(lock);
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (workers_.empty()) {
        activeTasks_.fetch_add(1, std::memory_order_relaxed);
        task();
        activeTasks_.fetch_sub(1, std::memory_order_relaxed);
        completedTasks_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(std::move(task));
        queuedTasks_.fetch_add(1, std::memory_order_relaxed);
    }
    wake_.notify_one();
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;
    if (workers_.empty() || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        body_ = &body;
        count_ = count;
        next_.store(0);
        completed_.store(0);
        ++generation_;
    }
    wake_.notify_all();
    runItems(body, count);
    // Wait until every item has run AND every worker has left
    // runItems: only then is it safe to let `body` go out of scope or
    // publish a new job that resets next_.
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] {
        return completed_.load() >= count_ && running_ == 0;
    });
}

struct ClaimableTask::State
{
    std::function<void()> fn;
    /** Set by whichever thread wins the right to execute fn. */
    std::atomic<bool> claimed{false};
    std::mutex mutex;
    std::condition_variable finished;
    bool done = false;
    std::exception_ptr error;

    void execute()
    {
        try {
            fn();
        } catch (...) {
            error = std::current_exception();
        }
        // Notify under the lock: the joiner may release its reference
        // the moment it observes done, leaving the worker's shared_ptr
        // as the only owner — which is fine, but the notify must not
        // race the waiter's re-check.
        std::lock_guard<std::mutex> lock(mutex);
        done = true;
        finished.notify_all();
    }
};

ClaimableTask::ClaimableTask(ThreadPool &pool, std::function<void()> fn)
    : state_(std::make_shared<State>())
{
    state_->fn = std::move(fn);
    std::shared_ptr<State> state = state_;
    pool.submit([state] {
        if (!state->claimed.exchange(true))
            state->execute();
    });
}

bool
ClaimableTask::join()
{
    if (!state_)
        return false;
    const std::shared_ptr<State> state = std::move(state_);
    bool ran_inline = false;
    if (!state->claimed.exchange(true)) {
        state->execute();
        ran_inline = true;
    } else {
        std::unique_lock<std::mutex> lock(state->mutex);
        state->finished.wait(lock, [&] { return state->done; });
    }
    if (state->error)
        std::rethrow_exception(state->error);
    return ran_inline;
}

void
ClaimableTask::cancel()
{
    if (!state_)
        return;
    const std::shared_ptr<State> state = std::move(state_);
    if (!state->claimed.exchange(true))
        return; // claimed before any worker: fn never runs
    std::unique_lock<std::mutex> lock(state->mutex);
    state->finished.wait(lock, [&] { return state->done; });
}

bool
ClaimableTask::ready() const
{
    if (!state_)
        return false;
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->done;
}

} // namespace beer::util
