/**
 * @file
 * Minimal fixed-size thread pool for deterministic data-parallel loops
 * and one-off asynchronous tasks.
 *
 * The pool exposes two primitives. parallelFor() splits [0, count)
 * across the worker threads plus the calling thread. Work items are
 * claimed dynamically with an atomic counter, so callers must make each
 * item's result independent of which thread runs it; the simulation
 * engine does this by giving every shard its own forked Rng stream
 * keyed by shard index and merging results in shard order. With that
 * discipline, results are bit-identical for any thread count.
 *
 * submit() enqueues a detached task that a worker runs when it is not
 * claiming parallelFor items (parallelFor has priority: its callers
 * block). Tasks run in FIFO submission order, which is what gives the
 * service scheduler (svc/scheduler.hh) its deterministic job ordering.
 * The task queue is observable through queuedTasks() / activeTasks() /
 * completedTasks(), the counters the recovery service's health
 * endpoint reports.
 *
 * ClaimableTask builds joinable one-shot tasks on top of submit():
 * whichever side reaches the work first — a pool worker or the thread
 * calling join() — claims and executes it exactly once. Joins are
 * therefore deadlock-free at any pool size and under any queue load:
 * if every worker is busy, the joiner simply runs the task inline
 * instead of waiting for a slot. The pipelined recovery session
 * (beer/session.hh) uses this to overlap SAT solving with DRAM
 * measurement without ever wedging on a saturated service pool.
 */

#ifndef BEER_UTIL_THREAD_POOL_HH
#define BEER_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace beer::util
{

/** Fixed-size worker pool executing blocking parallel-for loops. */
class ThreadPool
{
  public:
    /**
     * @param num_threads total threads that execute work, including
     *        the calling thread; 0 means hardware concurrency.
     * @param background run the worker threads at idle scheduling
     *        priority (SCHED_IDLE on Linux; no-op elsewhere), so pool
     *        work consumes only CPU time the submitting threads are
     *        not using. This is what the pipelined recovery session
     *        wants from its solver pool: on a loaded or single-CPU
     *        host the speculative solve then fills the idle time of
     *        the measurement loop's refresh pauses instead of
     *        time-slicing against its datapath — time-sliced solving
     *        stretches the measurement wall clock by exactly the
     *        cycles it borrows, hiding nothing. Whenever the
     *        submitter genuinely blocks (refresh-pause sleep, task
     *        join), the background worker is the only runnable thread
     *        and proceeds at full speed, so joins never starve.
     */
    explicit ThreadPool(std::size_t num_threads = 0,
                        bool background = false);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total threads that execute work (workers + calling thread). */
    std::size_t size() const { return workers_.size() + 1; }

    /**
     * Run body(i) for every i in [0, count) and return once all calls
     * have finished. The calling thread participates. Not reentrant:
     * body must not call parallelFor on the same pool.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

    /**
     * Enqueue a one-off task for asynchronous execution on a worker
     * thread. Tasks start in FIFO submission order. When the pool has
     * no workers (size() == 1) the task runs inline before submit()
     * returns, so single-threaded configurations stay correct, just
     * synchronous. Unstarted tasks still queued at destruction are
     * discarded — callers that care must quiesce first (the service
     * scheduler drains its jobs before releasing the pool).
     */
    void submit(std::function<void()> task);

    /** Submitted tasks waiting for a worker. */
    std::uint64_t queuedTasks() const
    {
        return queuedTasks_.load(std::memory_order_relaxed);
    }
    /** Submitted tasks currently executing. */
    std::uint64_t activeTasks() const
    {
        return activeTasks_.load(std::memory_order_relaxed);
    }
    /** Submitted tasks that finished, cumulative over the lifetime. */
    std::uint64_t completedTasks() const
    {
        return completedTasks_.load(std::memory_order_relaxed);
    }

  private:
    void workerLoop();
    /** Claim and run items of the current job until none remain. */
    void runItems(const std::function<void(std::size_t)> &body,
                  std::size_t count);
    /** Run one async task; @p lock is held on entry and exit. */
    void runTask(std::unique_lock<std::mutex> &lock);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    /** FIFO queue of submit()ted tasks (guarded by mutex_). */
    std::deque<std::function<void()>> tasks_;
    std::atomic<std::uint64_t> queuedTasks_{0};
    std::atomic<std::uint64_t> activeTasks_{0};
    std::atomic<std::uint64_t> completedTasks_{0};
    /** Current job; body_ is only dereferenced for claimed items. */
    const std::function<void(std::size_t)> *body_ = nullptr;
    std::size_t count_ = 0;
    std::atomic<std::size_t> next_{0};
    std::atomic<std::size_t> completed_{0};
    /** Workers currently inside runItems (callers wait for zero). */
    std::size_t running_ = 0;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
};

/**
 * One-shot unit of work submitted to a ThreadPool that the owner can
 * also execute itself: the function runs exactly once, on whichever
 * thread claims it first. join() blocks until the function has
 * finished; when no worker has claimed it yet, join() runs it inline
 * on the calling thread, so joining can never deadlock — not on a
 * workerless pool, not behind a full task queue.
 */
class ClaimableTask
{
  public:
    /** Empty task; join() is a no-op until a real one is assigned. */
    ClaimableTask() = default;

    /** Hand @p fn to @p pool; a worker runs it unless join() wins. */
    ClaimableTask(ThreadPool &pool, std::function<void()> fn);

    /**
     * Ensure fn has run and wait for it to finish, executing it on the
     * calling thread when no worker claimed it yet. Rethrows fn's
     * exception, if any. Idempotent; releases the task's state, so
     * ready()/ranInline() answers must be read before a second join().
     *
     * @return true iff this call executed fn inline (no overlap
     *         happened: the work ran after the join point, not before)
     */
    bool join();

    /**
     * Claim the task away from the pool without running it: when no
     * worker has started fn yet, fn never runs at all; when one has,
     * wait for it to finish (fn captures state the caller is about to
     * invalidate). Swallows fn's exception. Releases the task's state.
     */
    void cancel();

    /** True iff fn has finished (a join() would not block). */
    bool ready() const;

    /** True iff a task was assigned and not yet join()ed. */
    bool active() const { return state_ != nullptr; }

  private:
    struct State;
    std::shared_ptr<State> state_;
};

} // namespace beer::util

#endif // BEER_UTIL_THREAD_POOL_HH
