/**
 * @file
 * Minimal fixed-size thread pool for deterministic data-parallel loops.
 *
 * The pool exposes exactly one primitive, parallelFor(), which splits
 * [0, count) across the worker threads plus the calling thread. Work
 * items are claimed dynamically with an atomic counter, so callers must
 * make each item's result independent of which thread runs it; the
 * simulation engine does this by giving every shard its own forked Rng
 * stream keyed by shard index and merging results in shard order. With
 * that discipline, results are bit-identical for any thread count.
 */

#ifndef BEER_UTIL_THREAD_POOL_HH
#define BEER_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace beer::util
{

/** Fixed-size worker pool executing blocking parallel-for loops. */
class ThreadPool
{
  public:
    /**
     * @param num_threads total threads that execute work, including
     *        the calling thread; 0 means hardware concurrency.
     */
    explicit ThreadPool(std::size_t num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total threads that execute work (workers + calling thread). */
    std::size_t size() const { return workers_.size() + 1; }

    /**
     * Run body(i) for every i in [0, count) and return once all calls
     * have finished. The calling thread participates. Not reentrant:
     * body must not call parallelFor on the same pool.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

  private:
    void workerLoop();
    /** Claim and run items of the current job until none remain. */
    void runItems(const std::function<void(std::size_t)> &body,
                  std::size_t count);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    /** Current job; body_ is only dereferenced for claimed items. */
    const std::function<void(std::size_t)> *body_ = nullptr;
    std::size_t count_ = 0;
    std::atomic<std::size_t> next_{0};
    std::atomic<std::size_t> completed_{0};
    /** Workers currently inside runItems (callers wait for zero). */
    std::size_t running_ = 0;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
};

} // namespace beer::util

#endif // BEER_UTIL_THREAD_POOL_HH
