/**
 * @file
 * Tests for the pluggable memory backends: trace recording must round-
 * trip through replay bit-for-bit, the fault-injection proxy must
 * perturb measurements (and the threshold filter must absorb the
 * perturbation), and the BEEP word adapter must drive backend words
 * like a SimulatedWord.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "beep/beep.hh"
#include "beep/word_under_test.hh"
#include "beer/beer.hh"
#include "beer/measure.hh"
#include "dram/chip.hh"
#include "dram/fault_proxy.hh"
#include "dram/trace.hh"
#include "ecc/code_equiv.hh"

using namespace beer;
using beer::dram::ChipConfig;
using beer::dram::FaultInjectionConfig;
using beer::dram::FaultInjectionProxy;
using beer::dram::makeVendorConfig;
using beer::dram::SimulatedChip;
using beer::dram::TraceRecorder;
using beer::dram::TraceReplayBackend;

namespace
{

ChipConfig
testChipConfig(char vendor, std::size_t k, std::uint64_t seed)
{
    ChipConfig config = makeVendorConfig(vendor, k, seed);
    config.map.rows = 32;
    config.iidErrors = true;
    return config;
}

MeasureConfig
fastMeasure(const SimulatedChip &chip)
{
    MeasureConfig measure;
    measure.pausesSeconds.clear();
    for (double ber : {0.1, 0.3})
        measure.pausesSeconds.push_back(
            chip.retentionModel().pauseForBitErrorRate(ber, 80.0));
    measure.repeatsPerPause = 10;
    measure.thresholdProbability = 1e-4;
    return measure;
}

} // anonymous namespace

TEST(TraceReplay, MeasurementRoundTripsThroughRecordedLog)
{
    SimulatedChip chip(testChipConfig('A', 8, 41));
    const MeasureConfig measure = fastMeasure(chip);
    const auto words = dram::trueCellWords(chip);
    const auto patterns = chargedPatterns(8, 1);

    std::ostringstream recorded;
    const ProfileCounts live = recordProfileTrace(
        chip, patterns, measure, words, recorded);

    std::istringstream stored(recorded.str());
    TraceReplayBackend trace(stored);
    EXPECT_EQ(trace.addressMap().numWords(), chip.numWords());
    EXPECT_EQ(trace.datawordBits(), chip.datawordBits());

    const ProfileCounts replayed = replayProfileTrace(trace);
    EXPECT_TRUE(trace.atEnd());
    EXPECT_EQ(live.patterns, replayed.patterns);
    EXPECT_EQ(live.errorCounts, replayed.errorCounts);
    EXPECT_EQ(live.wordsTested, replayed.wordsTested);

    // The replayed counts feed the normal pipeline and recover the
    // recorded chip's secret function, with no chip present.
    const MiscorrectionProfile profile =
        replayed.threshold(measure.thresholdProbability);
    const BeerSolveResult solve = solveForEccFunction(profile);
    ASSERT_TRUE(solve.unique());
    EXPECT_TRUE(ecc::equivalent(solve.solutions.front(),
                                chip.groundTruthCode()));
}

TEST(TraceReplay, SessionRunsAgainstRecordedTrace)
{
    // Record an adaptive session's operations, then run an identically
    // configured session against the trace alone.
    const auto make_config = [](const SimulatedChip &chip,
                                const std::vector<std::size_t> &words) {
        SessionConfig config;
        config.measure = fastMeasure(chip);
        config.measure.repeatsPerPause = 25;
        config.wordsUnderTest = words;
        return config;
    };

    SimulatedChip chip(testChipConfig('B', 8, 43));
    const auto words = dram::trueCellWords(chip);

    std::ostringstream recorded;
    RecoveryReport live;
    {
        TraceRecorder recorder(chip, recorded);
        Session session(recorder, make_config(chip, words));
        live = session.run();
    }
    ASSERT_TRUE(live.succeeded());

    std::istringstream stored(recorded.str());
    TraceReplayBackend trace(stored);
    Session session(trace, make_config(chip, words));
    const RecoveryReport replayed = session.run();

    ASSERT_TRUE(replayed.succeeded());
    EXPECT_TRUE(live.solve.solutions == replayed.solve.solutions);
    EXPECT_EQ(live.counts.errorCounts, replayed.counts.errorCounts);
    EXPECT_EQ(replayed.stats.patternMeasurements,
              live.stats.patternMeasurements);
}

TEST(TraceReplay, ParsesGeometryAndMetaLines)
{
    std::istringstream in("beertrace 1\n"
                          "# a comment\n"
                          "geom 1 2 4 8\n"
                          "k 8\n"
                          "meta note hello world\n"
                          "w 0 10110000\n"
                          "r 0 10110000\n"
                          "p 60 80\n");
    TraceReplayBackend trace(in);
    EXPECT_EQ(trace.addressMap().bytesPerWord, 1u);
    EXPECT_EQ(trace.addressMap().rows, 8u);
    EXPECT_EQ(trace.datawordBits(), 8u);
    ASSERT_EQ(trace.metaLines().size(), 1u);
    EXPECT_EQ(trace.metaLines()[0], "note hello world");
    EXPECT_EQ(trace.totalOps(), 3u);

    const gf2::BitVec data = gf2::BitVec::fromString("10110000");
    trace.writeDataword(0, data);
    EXPECT_EQ(trace.readDataword(0), data);
    trace.pauseRefresh(60.0, 80.0);
    EXPECT_TRUE(trace.atEnd());
}

TEST(FaultProxy, TransientNoisePerturbsCountsButNotProfile)
{
    // Same chip model and seed measured bare and through a noisy
    // proxy: raw counts must differ (the proxy injects errors) while
    // the threshold filter still recovers the exact profile (paper
    // Figure 4's robustness claim, now demonstrated end-to-end
    // through the backend seam).
    SimulatedChip bare(testChipConfig('A', 8, 47));
    SimulatedChip wrapped(testChipConfig('A', 8, 47));
    FaultInjectionConfig faults;
    faults.transientFlipRate = 5e-4;
    FaultInjectionProxy proxy(wrapped, faults);

    const MeasureConfig measure = [&] {
        MeasureConfig config = fastMeasure(bare);
        config.repeatsPerPause = 30;
        return config;
    }();
    const auto patterns = chargedPatterns(8, 1);
    const auto words = dram::trueCellWords(bare);

    const ProfileCounts clean =
        measureProfile(bare, patterns, measure, words);
    const ProfileCounts noisy =
        measureProfile(proxy, patterns, measure, words);

    EXPECT_GT(proxy.injectedFlips(), 0u);
    EXPECT_NE(clean.errorCounts, noisy.errorCounts);
    EXPECT_EQ(noisy.threshold(5e-3),
              exhaustiveProfile(wrapped.groundTruthCode(), patterns));
}

TEST(FaultProxy, StuckAtFaultPinsReadBits)
{
    SimulatedChip chip(testChipConfig('A', 8, 53));
    FaultInjectionConfig faults;
    faults.stuckAt.push_back({/*wordIndex=*/3, /*bit=*/5,
                              /*value=*/false});
    FaultInjectionProxy proxy(chip, faults);

    gf2::BitVec ones = gf2::BitVec::ones(8);
    proxy.writeDataword(3, ones);
    const gf2::BitVec read = proxy.readDataword(3);
    EXPECT_FALSE(read.get(5));
    for (std::size_t bit = 0; bit < 8; ++bit) {
        if (bit != 5) {
            EXPECT_TRUE(read.get(bit)) << "bit " << bit;
        }
    }

    // Byte path sees the same pinned bit; other words are untouched.
    const std::size_t addr = chip.addressMap().byteOfSlot(3, 0);
    EXPECT_EQ(proxy.readByte(addr), 0xFF & ~(1u << 5));
    proxy.writeDataword(4, ones);
    EXPECT_EQ(proxy.readDataword(4), ones);
}

TEST(FaultProxy, ComposesOverTraceReplay)
{
    // Decorators stack on any backend: record a clean measurement,
    // then replay it through a fault proxy to study extra noise on
    // real recorded data.
    SimulatedChip chip(testChipConfig('A', 8, 59));
    const MeasureConfig measure = fastMeasure(chip);
    const auto words = dram::trueCellWords(chip);
    const auto patterns = chargedPatterns(8, 1);

    std::ostringstream recorded;
    const ProfileCounts live = recordProfileTrace(
        chip, patterns, measure, words, recorded);

    std::istringstream stored(recorded.str());
    TraceReplayBackend trace(stored);
    FaultInjectionConfig faults;
    faults.transientFlipRate = 5e-3;
    FaultInjectionProxy proxy(trace, faults);

    const ProfileCounts noisy =
        measureProfile(proxy, patterns, measure, words);
    EXPECT_TRUE(trace.atEnd());
    EXPECT_GT(proxy.injectedFlips(), 0u);
    EXPECT_NE(live.errorCounts, noisy.errorCounts);
}

TEST(BeepAdapter, ProfilesBackendWordLikeSimulatedWord)
{
    // A chip word with known weak cells: BEEP through the
    // MemoryInterface adapter must find planted error cells exactly
    // like the dedicated SimulatedWord harness does.
    ChipConfig config = testChipConfig('A', 16, 61);
    config.iidErrors = false;
    config.seed = 17;
    SimulatedChip chip(config);

    // Find a pause long enough that some cells of word 0 decay
    // deterministically (per-cell retention times are fixed).
    const double pause =
        chip.retentionModel().pauseForBitErrorRate(0.15, 80.0);

    beep::BeepConfig beep_config;
    beep_config.passes = 2;
    beep_config.readsPerPattern = 4;
    beep_config.seed = 11;

    beep::MemoryWordUnderTest word(chip, /*word_index=*/0, pause, 80.0);
    beep::Profiler profiler(chip.groundTruthCode(), beep_config);
    const auto result = profiler.profile(word);

    // Ground truth: which codeword cells of word 0 decay under this
    // pause (charge domain equals value domain in true cells).
    std::vector<std::size_t> expected;
    {
        const gf2::BitVec ones =
            gf2::BitVec::ones(chip.datawordBits());
        chip.writeDataword(0, ones);
        const gf2::BitVec before = chip.storedCodeword(0);
        chip.pauseRefresh(pause, 80.0);
        const gf2::BitVec after = chip.storedCodeword(0);
        for (std::size_t cell = 0; cell < before.size(); ++cell)
            if (before.get(cell) && !after.get(cell))
                expected.push_back(cell);
    }
    for (std::size_t cell : expected)
        EXPECT_NE(std::find(result.errorCells.begin(),
                            result.errorCells.end(), cell),
                  result.errorCells.end())
            << "cell " << cell;
}

TEST(Discovery, WorksThroughAbstractInterface)
{
    // discoverCellTypes/discoverWordLayout now take the abstract
    // interface; run them through a proxy decorator to prove no
    // SimulatedChip-only accessor is needed, and derive the
    // words-under-test externally.
    SimulatedChip chip(testChipConfig('C', 16, 67));
    FaultInjectionProxy proxy(chip, {});

    const double pause =
        chip.retentionModel().pauseForBitErrorRate(0.2, 80.0);
    const CellTypeSurvey survey =
        discoverCellTypes(proxy, pause, 80.0);
    ASSERT_EQ(survey.rowTypes.size(), chip.addressMap().rows);

    std::size_t agree = 0;
    for (std::size_t row = 0; row < survey.rowTypes.size(); ++row)
        if (survey.rowTypes[row] ==
            chip.cellTypeOfWord(row * chip.addressMap().wordsPerRow()))
            ++agree;
    EXPECT_EQ(agree, survey.rowTypes.size());

    EXPECT_EQ(survey.trueCellWords(chip.addressMap()),
              dram::trueCellWords(chip));
}
