/**
 * @file
 * Tests for the Section-4.1 baseline: direct syndrome-injection
 * recovery, including syndrome registers with scrambled bit order.
 */

#include <gtest/gtest.h>

#include "beer/baseline.hh"
#include "ecc/code_equiv.hh"
#include "ecc/hamming.hh"
#include "util/rng.hh"

using namespace beer;
using beer::ecc::LinearCode;
using beer::ecc::randomSecCode;
using beer::gf2::BitVec;
using beer::util::Rng;

TEST(Baseline, RecoversExactCode)
{
    Rng rng(3);
    for (std::size_t k : {4u, 8u, 16u, 32u, 64u, 128u}) {
        const LinearCode secret = randomSecCode(k, rng);
        const auto result = recoverBySyndromeInjection(
            secret.n(), secret.k(), makeOracle(secret));
        EXPECT_TRUE(result.code == secret) << "k=" << k;
        EXPECT_EQ(result.probes, secret.n());
    }
}

TEST(Baseline, HandlesScrambledSyndromeRegister)
{
    // A controller may expose syndrome bits in a different order; the
    // recovery must renormalize to standard form.
    Rng rng(5);
    const LinearCode secret = randomSecCode(16, rng);
    const std::size_t p = secret.numParityBits();
    std::vector<std::size_t> perm(p);
    for (std::size_t i = 0; i < p; ++i)
        perm[i] = (i + 2) % p;

    SyndromeOracle scrambled = [&](const BitVec &error) {
        const BitVec s = secret.syndrome(error);
        BitVec out(p);
        for (std::size_t i = 0; i < p; ++i)
            out.set(perm[i], s.get(i));
        return out;
    };

    const auto result =
        recoverBySyndromeInjection(secret.n(), secret.k(), scrambled);
    // Recovered code must decode identically (same data-bit syndrome
    // mapping), i.e. be the same code up to parity relabeling.
    EXPECT_TRUE(ecc::equivalent(result.code, secret));
}

TEST(Baseline, ProbeCountIsLinear)
{
    Rng rng(7);
    const LinearCode secret = randomSecCode(57, rng);
    const auto result = recoverBySyndromeInjection(
        secret.n(), secret.k(), makeOracle(secret));
    EXPECT_EQ(result.probes, 63u);
}
