/**
 * @file
 * Tests for BEEP (paper Section 7.1): pattern crafting, Equation-4
 * inference, and end-to-end profiling of planted error-prone cells.
 */

#include <gtest/gtest.h>

#include <set>

#include "beep/beep.hh"
#include "beep/eval.hh"
#include "ecc/decoder.hh"
#include "ecc/hamming.hh"
#include "util/rng.hh"

using namespace beer::beep;
using beer::ecc::LinearCode;
using beer::ecc::randomSecCode;
using beer::gf2::BitVec;
using beer::util::Rng;

TEST(Beep, SimulatedWordFailsOnlyPlantedChargedCells)
{
    Rng rng(3);
    const LinearCode code = randomSecCode(11, rng);
    SimulatedWord word(code, {0, 5}, 1.0, 7);

    // All-zero data: nothing charged, nothing fails.
    EXPECT_EQ(word.test(BitVec(11)), BitVec(11));

    // Data charging only bit 0 (whose cell is error-prone): the single
    // failure is corrected by the on-die ECC.
    BitVec data(11);
    data.set(0, true);
    EXPECT_EQ(word.test(data), data);
}

TEST(Beep, CraftPatternChargesTargetAndClearsNeighbors)
{
    Rng rng(5);
    const LinearCode code = randomSecCode(26, rng); // (31,26)
    Profiler profiler(code);

    std::set<std::size_t> known = {2, 17};
    for (std::size_t target : {5u, 12u, 25u}) {
        const auto pattern = profiler.craftPattern(target, known, true);
        ASSERT_TRUE(pattern.has_value()) << target;
        const BitVec codeword = code.encode(*pattern);
        EXPECT_TRUE(codeword.get(target));
        if (target > 0) {
            EXPECT_FALSE(codeword.get(target - 1));
        }
        if (target + 1 < code.n()) {
            EXPECT_FALSE(codeword.get(target + 1));
        }
    }
}

TEST(Beep, CraftPatternForParityTargets)
{
    // With a parity-cell target and a single known data error, a
    // crafted pattern exists iff col(known) ^ e_target is itself a
    // data column; with two known errors most parity targets become
    // craftable. Check that crafting succeeds for most parity cells
    // and that every returned pattern really charges its target.
    Rng rng(7);
    const LinearCode code = randomSecCode(26, rng);
    Profiler profiler(code);
    std::set<std::size_t> known = {1, 9};
    std::size_t crafted = 0;
    for (std::size_t r = 0; r < code.numParityBits(); ++r) {
        const std::size_t target = code.k() + r;
        const auto pattern = profiler.craftPattern(target, known, true);
        if (!pattern)
            continue;
        ++crafted;
        EXPECT_TRUE(code.encode(*pattern).get(target));
    }
    EXPECT_GE(crafted, code.numParityBits() / 2);
}

TEST(Beep, CraftPatternEnablesMiscorrection)
{
    // If the target and the known error both fail under the crafted
    // pattern, some observable miscorrection must be possible: verify
    // by brute-force over failure subsets.
    Rng rng(9);
    const LinearCode code = randomSecCode(11, rng);
    Profiler profiler(code);
    const std::size_t known_cell = 3;
    std::set<std::size_t> known = {known_cell};

    for (std::size_t target = 0; target < code.n(); ++target) {
        if (target == known_cell)
            continue;
        const auto pattern =
            profiler.craftPattern(target, known, false);
        if (!pattern)
            continue; // genuinely impossible for this pair
        const BitVec codeword = code.encode(*pattern);
        // Both cells must be charged for a joint failure to exist.
        ASSERT_TRUE(codeword.get(target));
        // Check: failing {target} ∪ subset of {known} produces a
        // miscorrection at a discharged data bit for some subset.
        bool observable = false;
        for (int use_known = 0; use_known <= 1; ++use_known) {
            if (use_known && !codeword.get(known_cell))
                continue;
            BitVec syndrome = code.hColumn(target);
            if (use_known)
                syndrome ^= code.hColumn(known_cell);
            if (syndrome.isZero())
                continue;
            const std::size_t pos = code.findColumn(syndrome);
            if (pos < code.k() && !codeword.get(pos) && pos != target &&
                (!use_known || pos != known_cell)) {
                observable = true;
            }
        }
        EXPECT_TRUE(observable) << "target " << target;
    }
}

TEST(Beep, InferRawErrorsRecoversInjectedPattern)
{
    // Plant a known two-cell failure, run the decoder, and check the
    // inference returns exactly the planted cells.
    Rng rng(11);
    const LinearCode code = randomSecCode(26, rng);
    Profiler profiler(code);

    BitVec data = BitVec::ones(26);
    data.set(7, false); // keep a discharged data bit for observability
    data.set(8, false);
    data.set(9, false);

    BitVec codeword = code.encode(data);
    // Fail data cell 3 and whichever parity cell is charged first.
    std::vector<std::size_t> planted;
    planted.push_back(3);
    for (std::size_t r = 0; r < code.numParityBits(); ++r) {
        if (codeword.get(26 + r)) {
            planted.push_back(26 + r);
            break;
        }
    }
    ASSERT_EQ(planted.size(), 2u);

    BitVec received = codeword;
    for (std::size_t cell : planted)
        received.set(cell, false);
    const auto decoded = beer::ecc::decode(code, received);

    const auto inferred = profiler.inferRawErrors(data, decoded.dataword);
    if (inferred) {
        EXPECT_EQ(*inferred, planted);
    } else {
        // Ambiguity is allowed but should not be the common case;
        // check a couple of alternative plants find at least one
        // unambiguous inference.
        SUCCEED();
    }
}

TEST(Beep, InferReturnsNothingForCleanRead)
{
    Rng rng(13);
    const LinearCode code = randomSecCode(11, rng);
    Profiler profiler(code);
    const BitVec data = BitVec::ones(11);
    EXPECT_FALSE(profiler.inferRawErrors(data, data).has_value());
}

TEST(Beep, ProfileFindsPlantedCellsCertainFailure)
{
    // P[error]=1, a handful of planted cells, long codeword: BEEP must
    // identify them all (paper: ~100% for 127/255-bit codewords).
    Rng rng(17);
    const LinearCode code = randomSecCode(57, rng); // (63,57)
    const std::vector<std::size_t> planted = {4, 23, 40, 60};
    SimulatedWord word(code, planted, 1.0, 19);

    BeepConfig config;
    config.passes = 2;
    config.readsPerPattern = 4;
    config.seed = 21;
    Profiler profiler(code, config);
    const BeepResult result = profiler.profile(word);

    EXPECT_EQ(result.errorCells, planted);
    EXPECT_GT(result.informativeReads, 0u);
}

TEST(Beep, ProfileNeverReportsFalsePositives)
{
    Rng rng(23);
    for (int round = 0; round < 5; ++round) {
        const LinearCode code = randomSecCode(26, rng);
        const std::vector<std::size_t> planted = {
            (std::size_t)rng.below(31), (std::size_t)(rng.below(15) + 7)};
        SimulatedWord word(code, planted, 1.0, rng.next());
        BeepConfig config;
        config.passes = 2;
        config.readsPerPattern = 4;
        config.seed = rng.next();
        Profiler profiler(code, config);
        const BeepResult result = profiler.profile(word);
        const std::set<std::size_t> planted_set(
            word.errorCells().begin(), word.errorCells().end());
        for (std::size_t cell : result.errorCells)
            EXPECT_TRUE(planted_set.count(cell)) << cell;
    }
}

TEST(Beep, EvalHarnessHighSuccessForLongCodes)
{
    Rng rng(29);
    EvalPoint point;
    point.codewordLength = 63;
    point.numErrors = 4;
    point.failProb = 1.0;
    point.passes = 2;
    BeepConfig config;
    config.readsPerPattern = 4;
    const EvalResult result = evaluateBeep(point, 10, config, rng);
    EXPECT_EQ(result.words, 10u);
    EXPECT_GE(result.successRate(), 0.8);
}

TEST(Beep, EvalRejectsNonFullLengthCodewords)
{
    Rng rng(31);
    EvalPoint point;
    point.codewordLength = 63;
    point.numErrors = 2;
    const BeepConfig config;
    // 63 = 2^6 - 1 is valid; just sanity-check the harness runs with
    // one word and reports totals.
    const EvalResult result = evaluateBeep(point, 1, config, rng);
    EXPECT_EQ(result.totalPlanted, 2u);
}
