/**
 * @file
 * Correctness tests for the BEER solver: for random SEC codes across a
 * range of dataword lengths, the solver must recover the planted code
 * (up to parity-row equivalence) from its miscorrection profile — the
 * paper's central claim (Section 6.1, Figure 5).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "beer/profile.hh"
#include "beer/solver.hh"
#include "ecc/code_equiv.hh"
#include "ecc/hamming.hh"
#include "util/rng.hh"

using namespace beer;
using beer::ecc::LinearCode;
using beer::ecc::canonicalize;
using beer::ecc::equivalent;
using beer::ecc::isFullLengthDatawordLength;
using beer::ecc::randomSecCode;
using beer::util::Rng;

namespace
{

BeerSolveResult
solvePlanted(const LinearCode &code,
             const std::vector<std::size_t> &charged_counts,
             const BeerSolverConfig &config = {})
{
    const auto patterns =
        chargedPatternUnion(code.k(), charged_counts);
    const auto profile = exhaustiveProfile(code, patterns);
    return solveForEccFunction(profile, code.numParityBits(), config);
}

} // anonymous namespace

TEST(BeerSolver, RecoversPaperExampleUniquely)
{
    const LinearCode code = ecc::paperExampleCode();
    const auto result = solvePlanted(code, {1});
    ASSERT_TRUE(result.unique());
    EXPECT_TRUE(equivalent(result.solutions[0], code));
}

TEST(BeerSolver, SolutionsAlwaysContainPlantedCode)
{
    Rng rng(17);
    for (std::size_t k = 4; k <= 16; ++k) {
        const LinearCode code = randomSecCode(k, rng);
        const auto result = solvePlanted(code, {1});
        ASSERT_TRUE(result.complete);
        ASSERT_GE(result.solutions.size(), 1u);
        bool found = false;
        for (const auto &solution : result.solutions)
            if (equivalent(solution, code))
                found = true;
        EXPECT_TRUE(found) << "k=" << k;
        // Every returned solution reproduces the observed profile.
        const auto patterns = chargedPatterns(k, 1);
        const auto observed = exhaustiveProfile(code, patterns);
        for (const auto &solution : result.solutions)
            EXPECT_EQ(exhaustiveProfile(solution, patterns), observed);
    }
}

/** Parameterized sweep over dataword lengths (Figure 5's x-axis). */
class BeerSolverSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(BeerSolverSweep, OneTwoChargedAlwaysUnique)
{
    // Paper: "BEER is always able to recover the original unique ECC
    // function using the {1,2}-CHARGED configuration."
    const std::size_t k = GetParam();
    Rng rng(1000 + k);
    for (int round = 0; round < 3; ++round) {
        const LinearCode code = randomSecCode(k, rng);
        const auto result = solvePlanted(code, {1, 2});
        ASSERT_TRUE(result.unique()) << "k=" << k << " found "
                                     << result.solutions.size();
        EXPECT_TRUE(equivalent(result.solutions[0], code));
        EXPECT_EQ(result.solutions[0],
                  canonicalize(result.solutions[0]));
    }
}

TEST_P(BeerSolverSweep, OneChargedUniqueForFullLengthCodes)
{
    const std::size_t k = GetParam();
    if (!isFullLengthDatawordLength(k))
        GTEST_SKIP() << "k=" << k << " is shortened";
    Rng rng(2000 + k);
    for (int round = 0; round < 3; ++round) {
        const LinearCode code = randomSecCode(k, rng);
        const auto result = solvePlanted(code, {1});
        ASSERT_TRUE(result.unique()) << "k=" << k;
        EXPECT_TRUE(equivalent(result.solutions[0], code));
    }
}

INSTANTIATE_TEST_SUITE_P(DatawordLengths, BeerSolverSweep,
                         ::testing::Values(4, 5, 6, 7, 8, 10, 11, 12,
                                           16, 20, 26),
                         ::testing::PrintToStringParamName());

TEST(BeerSolver, ShortenedCodesCanBeAmbiguousWithOneCharged)
{
    // For shortened codes the 1-CHARGED patterns may admit multiple
    // functions (Figure 5); verify we can find such a case and that
    // the {1,2}-CHARGED profile disambiguates it.
    Rng rng(23);
    bool ambiguous_seen = false;
    for (int round = 0; round < 40 && !ambiguous_seen; ++round) {
        const LinearCode code = randomSecCode(5, rng); // shortened
        const auto result = solvePlanted(code, {1});
        ASSERT_TRUE(result.complete);
        if (result.solutions.size() > 1) {
            ambiguous_seen = true;
            const auto fixed = solvePlanted(code, {1, 2});
            ASSERT_TRUE(fixed.unique());
            EXPECT_TRUE(equivalent(fixed.solutions[0], code));
        }
    }
    EXPECT_TRUE(ambiguous_seen)
        << "expected at least one ambiguous shortened code";
}

TEST(BeerSolver, SymmetryBreakingDoesNotChangeSolutionSet)
{
    Rng rng(29);
    for (int round = 0; round < 5; ++round) {
        const LinearCode code = randomSecCode(6, rng);
        BeerSolverConfig with_sb;
        with_sb.symmetryBreaking = true;
        BeerSolverConfig without_sb;
        without_sb.symmetryBreaking = false;

        auto a = solvePlanted(code, {1}, with_sb);
        auto b = solvePlanted(code, {1}, without_sb);
        ASSERT_TRUE(a.complete && b.complete);

        auto key = [](const BeerSolveResult &r) {
            std::vector<std::string> out;
            for (const auto &sol : r.solutions)
                out.push_back(sol.pMatrix().toString());
            std::sort(out.begin(), out.end());
            return out;
        };
        EXPECT_EQ(key(a), key(b));
    }
}

TEST(BeerSolver, MaxSolutionsStopsEarly)
{
    Rng rng(31);
    const LinearCode code = randomSecCode(8, rng);
    BeerSolverConfig config;
    config.maxSolutions = 1;
    const auto result = solvePlanted(code, {1}, config);
    EXPECT_EQ(result.solutions.size(), 1u);
    EXPECT_FALSE(result.complete);
}

TEST(BeerSolver, InconsistentProfileIsUnsat)
{
    // A profile claiming "no miscorrections possible anywhere" cannot
    // be produced by any valid SEC code with 1-CHARGED patterns at
    // full length (every syndrome is covered, so some pattern must
    // admit a miscorrection).
    const std::size_t k = 4;
    MiscorrectionProfile profile;
    profile.k = k;
    for (const auto &pattern : chargedPatterns(k, 1)) {
        PatternProfile entry;
        entry.pattern = pattern;
        entry.miscorrectable = beer::gf2::BitVec(k);
        profile.patterns.push_back(entry);
    }
    const auto result = solveForEccFunction(profile, 3);
    EXPECT_TRUE(result.complete);
    EXPECT_TRUE(result.solutions.empty());
}

TEST(BeerSolver, StatsAreReported)
{
    Rng rng(37);
    const LinearCode code = randomSecCode(8, rng);
    const auto result = solvePlanted(code, {1});
    EXPECT_GT(result.stats.propagations, 0u);
    EXPECT_GT(result.memoryBytes, 0u);
}
