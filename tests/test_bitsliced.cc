/**
 * @file
 * Property tests for the bitsliced simulation engine: the 64-lane
 * decode kernel must match the scalar decoder lane-for-lane on
 * randomized codes and error words, and the sharded Monte-Carlo
 * driver must produce bit-identical statistics for every thread count.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ecc/bitsliced.hh"
#include "ecc/decoder.hh"
#include "ecc/hamming.hh"
#include "sim/word_sim.hh"
#include "util/rng.hh"

using namespace beer;
using ecc::BitslicedDecodeLanes;
using ecc::BitslicedDecoder;
using ecc::DecodeOutcome;
using ecc::LinearCode;
using ecc::randomSecCode;
using gf2::BitVec;
using sim::SimConfig;
using sim::simulateRetentionErrors;
using sim::simulateUniformErrors;
using sim::WordSimStats;
using util::Rng;

namespace
{

constexpr unsigned kLanes = 64;

/** Transpose @p word into lane @p lane of the raw lane buffer (the
 * position-major uint64 layout the engine feeds the kernel). */
void
setWord(std::vector<std::uint64_t> &lanes, unsigned lane,
        const BitVec &word)
{
    for (std::size_t pos = 0; pos < word.size(); ++pos)
        if (word.get(pos))
            lanes[pos] |= (std::uint64_t)1 << lane;
}

BitVec
randomErrorWord(std::size_t n, double density, Rng &rng)
{
    BitVec e(n);
    for (std::size_t i = 0; i < n; ++i)
        if (rng.bernoulli(density))
            e.set(i, true);
    return e;
}

/** Codeword position the kernel flipped in @p lane, or n if none. */
std::size_t
flippedPosition(const BitslicedDecodeLanes &lanes, unsigned lane,
                std::size_t n)
{
    std::size_t flipped = n;
    std::size_t count = 0;
    for (std::size_t pos = 0; pos < n; ++pos) {
        if ((lanes.correction[pos] >> lane) & 1) {
            flipped = pos;
            ++count;
        }
    }
    EXPECT_LE(count, 1u);
    return flipped;
}

DecodeOutcome
laneOutcome(const BitslicedDecodeLanes &lanes, unsigned lane)
{
    std::size_t matches = 0;
    DecodeOutcome outcome = DecodeOutcome::NoError;
    for (std::size_t o = 0; o < 6; ++o) {
        if ((lanes.outcome[o] >> lane) & 1) {
            outcome = (DecodeOutcome)o;
            ++matches;
        }
    }
    // The six outcome masks partition the lanes.
    EXPECT_EQ(matches, 1u);
    return outcome;
}

void
expectKernelMatchesScalar(const LinearCode &code, Rng &rng,
                          double density)
{
    const std::size_t n = code.n();

    // A random (valid) stored codeword; the kernel itself only sees
    // the error lanes, the scalar reference decodes codeword ^ error.
    BitVec data(code.k());
    for (std::size_t i = 0; i < code.k(); ++i)
        data.set(i, rng.bernoulli(0.5));
    const BitVec codeword = code.encode(data);

    std::vector<std::uint64_t> batch(n, 0);
    std::vector<BitVec> errors;
    for (unsigned lane = 0; lane < kLanes; ++lane) {
        // Lane 0 stays error-free to cover the NoError path.
        const BitVec e = lane == 0 ? BitVec(n)
                                   : randomErrorWord(n, density, rng);
        setWord(batch, lane, e);
        errors.push_back(e);
    }

    const BitslicedDecoder decoder(code);
    BitslicedDecodeLanes lanes;
    decoder.decode(batch.data(), lanes);

    for (unsigned lane = 0; lane < kLanes; ++lane) {
        const BitVec received = codeword ^ errors[lane];
        const ecc::DecodeResult result = ecc::decode(code, received);
        const DecodeOutcome outcome =
            ecc::classify(code, codeword, received, result);

        EXPECT_EQ(((lanes.anyRaw >> lane) & 1) != 0,
                  !errors[lane].isZero());
        EXPECT_EQ(flippedPosition(lanes, lane, n),
                  result.flippedBit == SIZE_MAX ? n : result.flippedBit)
            << "lane " << lane;
        EXPECT_EQ(laneOutcome(lanes, lane), outcome) << "lane " << lane;

        // Post-correction data errors: error lanes XOR correction
        // lanes must equal the scalar dataword difference.
        for (std::size_t bit = 0; bit < code.k(); ++bit) {
            const bool kernel_err =
                ((batch[bit] ^ lanes.correction[bit]) >> lane) & 1;
            const bool scalar_err =
                result.dataword.get(bit) != data.get(bit);
            EXPECT_EQ(kernel_err, scalar_err)
                << "lane " << lane << " bit " << bit;
        }
    }
}

} // anonymous namespace

TEST(Bitsliced, LaneBufferTransposeRoundTrip)
{
    Rng rng(17);
    std::vector<std::uint64_t> batch(23, 0);
    std::vector<BitVec> words;
    for (unsigned lane = 0; lane < kLanes; ++lane) {
        words.push_back(randomErrorWord(23, 0.4, rng));
        setWord(batch, lane, words.back());
    }
    for (unsigned lane = 0; lane < kLanes; ++lane)
        for (std::size_t pos = 0; pos < 23; ++pos)
            EXPECT_EQ((bool)((batch[pos] >> lane) & 1),
                      words[lane].get(pos))
                << "lane " << lane << " pos " << pos;
}

TEST(Bitsliced, KernelMatchesScalarDecodeLaneForLane)
{
    Rng rng(19);
    // k = 4 and 57 are full-length Hamming codes; 8, 16, 32 are
    // shortened (some syndromes match no column, exercising the
    // DetectedUncorrectable path).
    for (std::size_t k : {4u, 8u, 16u, 32u, 57u}) {
        const LinearCode code = randomSecCode(k, rng);
        for (double density : {0.02, 0.1, 0.5})
            expectKernelMatchesScalar(code, rng, density);
    }
}

TEST(Bitsliced, KernelMatchesScalarOnCanonicalCode)
{
    // Manufacturer B's structured code (repeating parity patterns).
    Rng rng(23);
    expectKernelMatchesScalar(ecc::canonicalSecCode(16), rng, 0.15);
}

TEST(Bitsliced, ShardedStatsIdenticalAcrossThreadCounts)
{
    Rng code_rng(29);
    const LinearCode code = randomSecCode(16, code_rng);
    const BitVec data = BitVec::fromString("1011001110001101");
    const BitVec codeword = code.encode(data);
    const BitVec mask =
        sim::chargedMask(codeword, dram::CellType::True);

    auto run = [&](std::size_t threads) {
        SimConfig config;
        config.threads = threads;
        config.wordsPerShard = 1 << 12; // many shards per run
        Rng rng(31);
        return simulateRetentionErrors(code, codeword, mask, 0.1,
                                       200000, rng, config);
    };

    const WordSimStats one = run(1);
    EXPECT_EQ(one, run(2));
    EXPECT_EQ(one, run(8));
    EXPECT_EQ(one.wordsSimulated, 200000u);
}

TEST(Bitsliced, ScalarEngineAlsoDeterministicAcrossThreadCounts)
{
    Rng code_rng(37);
    const LinearCode code = randomSecCode(8, code_rng);

    auto run = [&](std::size_t threads) {
        SimConfig config;
        config.bitsliced = false;
        config.threads = threads;
        config.wordsPerShard = 1 << 10;
        Rng rng(41);
        return simulateUniformErrors(code, BitVec(8), 0.01, 50000, rng,
                                     config);
    };

    const WordSimStats one = run(1);
    EXPECT_EQ(one, run(2));
    EXPECT_EQ(one, run(8));
}

TEST(Bitsliced, EngineChoiceIsStatisticallyEquivalent)
{
    // Scalar and bitsliced paths consume different Rng streams but
    // must agree on every expectation; compare the raw-error word
    // fraction and the outcome distribution at loose tolerances.
    Rng code_rng(43);
    const LinearCode code = randomSecCode(16, code_rng);
    const std::uint64_t words = 400000;

    SimConfig scalar_config;
    scalar_config.bitsliced = false;
    Rng scalar_rng(47);
    const WordSimStats scalar = simulateUniformErrors(
        code, BitVec(16), 0.005, words, scalar_rng, scalar_config);

    Rng bitsliced_rng(53);
    const WordSimStats bitsliced = simulateUniformErrors(
        code, BitVec(16), 0.005, words, bitsliced_rng, SimConfig{});

    ASSERT_EQ(scalar.wordsSimulated, bitsliced.wordsSimulated);
    EXPECT_NEAR((double)scalar.wordsWithRawErrors,
                (double)bitsliced.wordsWithRawErrors,
                0.05 * (double)scalar.wordsWithRawErrors);
    for (std::size_t o = 0; o < scalar.outcomes.size(); ++o) {
        const double a = (double)scalar.outcomes[o];
        const double b = (double)bitsliced.outcomes[o];
        EXPECT_NEAR(a, b, 0.1 * (a + b) + 50.0) << "outcome " << o;
    }

    std::uint64_t scalar_raw = 0;
    std::uint64_t bitsliced_raw = 0;
    for (std::size_t pos = 0; pos < code.n(); ++pos) {
        scalar_raw += scalar.preCorrectionErrors[pos];
        bitsliced_raw += bitsliced.preCorrectionErrors[pos];
    }
    EXPECT_NEAR((double)scalar_raw, (double)bitsliced_raw,
                0.05 * (double)scalar_raw);
}
