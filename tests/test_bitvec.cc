/**
 * @file
 * Unit and property tests for gf2::BitVec.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "gf2/bitvec.hh"
#include "util/rng.hh"

using beer::gf2::BitVec;
using beer::util::Rng;

TEST(BitVec, DefaultIsEmpty)
{
    BitVec v;
    EXPECT_EQ(v.size(), 0u);
    EXPECT_TRUE(v.empty());
    EXPECT_TRUE(v.isZero());
}

TEST(BitVec, ConstructZeroed)
{
    BitVec v(130);
    EXPECT_EQ(v.size(), 130u);
    for (std::size_t i = 0; i < v.size(); ++i)
        EXPECT_FALSE(v.get(i));
    EXPECT_TRUE(v.isZero());
    EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, SetGetFlip)
{
    BitVec v(100);
    v.set(0, true);
    v.set(63, true);
    v.set(64, true);
    v.set(99, true);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(63));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(99));
    EXPECT_FALSE(v.get(1));
    EXPECT_EQ(v.popcount(), 4u);

    v.flip(0);
    EXPECT_FALSE(v.get(0));
    v.flip(1);
    EXPECT_TRUE(v.get(1));
    EXPECT_EQ(v.popcount(), 4u);
}

TEST(BitVec, InitializerListAndString)
{
    BitVec v{1, 0, 1, 1};
    EXPECT_EQ(v.toString(), "1011");
    EXPECT_EQ(BitVec::fromString("1011"), v);
    EXPECT_EQ(BitVec::fromString(""), BitVec(0));
}

TEST(BitVec, UnitAndOnes)
{
    const BitVec e2 = BitVec::unit(5, 2);
    EXPECT_EQ(e2.toString(), "00100");
    const BitVec ones = BitVec::ones(70);
    EXPECT_EQ(ones.popcount(), 70u);
    // Tail bits past size must not leak into popcount.
    EXPECT_EQ(BitVec::ones(65).popcount(), 65u);
}

TEST(BitVec, XorAndOr)
{
    const BitVec a = BitVec::fromString("1100");
    const BitVec b = BitVec::fromString("1010");
    EXPECT_EQ((a ^ b).toString(), "0110");
    EXPECT_EQ((a & b).toString(), "1000");
    EXPECT_EQ((a | b).toString(), "1110");
}

TEST(BitVec, XorIsInvolution)
{
    Rng rng(7);
    for (int round = 0; round < 20; ++round) {
        const std::size_t size = 1 + rng.below(200);
        BitVec a(size);
        BitVec b(size);
        for (std::size_t i = 0; i < size; ++i) {
            a.set(i, rng.bernoulli(0.5));
            b.set(i, rng.bernoulli(0.5));
        }
        EXPECT_EQ((a ^ b) ^ b, a);
        EXPECT_TRUE((a ^ a).isZero());
    }
}

TEST(BitVec, DotProduct)
{
    const BitVec a = BitVec::fromString("1101");
    EXPECT_TRUE(a.dot(BitVec::fromString("1000")));
    EXPECT_FALSE(a.dot(BitVec::fromString("1100")));
    EXPECT_FALSE(a.dot(BitVec::fromString("1110")));
    EXPECT_TRUE(a.dot(BitVec::fromString("0110")));
    EXPECT_FALSE(a.dot(BitVec::fromString("0000")));
}

TEST(BitVec, DotMatchesPopcountParity)
{
    Rng rng(11);
    for (int round = 0; round < 50; ++round) {
        const std::size_t size = 1 + rng.below(150);
        BitVec a(size);
        BitVec b(size);
        for (std::size_t i = 0; i < size; ++i) {
            a.set(i, rng.bernoulli(0.3));
            b.set(i, rng.bernoulli(0.7));
        }
        EXPECT_EQ(a.dot(b), (a & b).popcount() % 2 == 1);
    }
}

TEST(BitVec, SubsetOf)
{
    const BitVec small = BitVec::fromString("0100");
    const BitVec big = BitVec::fromString("0110");
    EXPECT_TRUE(small.isSubsetOf(big));
    EXPECT_FALSE(big.isSubsetOf(small));
    EXPECT_TRUE(big.isSubsetOf(big));
    EXPECT_TRUE(BitVec(4).isSubsetOf(small));
}

TEST(BitVec, SubsetOfProperty)
{
    Rng rng(13);
    for (int round = 0; round < 50; ++round) {
        const std::size_t size = 1 + rng.below(130);
        BitVec a(size);
        BitVec b(size);
        for (std::size_t i = 0; i < size; ++i) {
            a.set(i, rng.bernoulli(0.5));
            b.set(i, rng.bernoulli(0.5));
        }
        // a & b is always a subset of both.
        EXPECT_TRUE((a & b).isSubsetOf(a));
        EXPECT_TRUE((a & b).isSubsetOf(b));
        // Definition check: subset iff AND equals self.
        EXPECT_EQ(a.isSubsetOf(b), (a & b) == a);
    }
}

TEST(BitVec, SupportAndFirstSet)
{
    BitVec v(200);
    v.set(3, true);
    v.set(64, true);
    v.set(199, true);
    const auto support = v.support();
    ASSERT_EQ(support.size(), 3u);
    EXPECT_EQ(support[0], 3u);
    EXPECT_EQ(support[1], 64u);
    EXPECT_EQ(support[2], 199u);
    EXPECT_EQ(v.firstSet(), 3u);
    EXPECT_EQ(BitVec(10).firstSet(), 10u);
}

TEST(BitVec, ConcatSlice)
{
    const BitVec a = BitVec::fromString("101");
    const BitVec b = BitVec::fromString("0110");
    const BitVec joined = a.concat(b);
    EXPECT_EQ(joined.toString(), "1010110");
    EXPECT_EQ(joined.slice(0, 3), a);
    EXPECT_EQ(joined.slice(3, 4), b);
    EXPECT_EQ(joined.slice(2, 2).toString(), "10");
}

TEST(BitVec, ConcatSliceRoundTrip)
{
    Rng rng(17);
    for (int round = 0; round < 30; ++round) {
        const std::size_t sa = 1 + rng.below(100);
        const std::size_t sb = 1 + rng.below(100);
        BitVec a(sa);
        BitVec b(sb);
        for (std::size_t i = 0; i < sa; ++i)
            a.set(i, rng.bernoulli(0.5));
        for (std::size_t i = 0; i < sb; ++i)
            b.set(i, rng.bernoulli(0.5));
        const BitVec joined = a.concat(b);
        EXPECT_EQ(joined.slice(0, sa), a);
        EXPECT_EQ(joined.slice(sa, sb), b);
    }
}

TEST(BitVec, LexOrderBitZeroMostSignificant)
{
    EXPECT_LT(BitVec::fromString("0111"), BitVec::fromString("1000"));
    EXPECT_LT(BitVec::fromString("1000"), BitVec::fromString("1001"));
    EXPECT_EQ(BitVec::fromString("1001") <=> BitVec::fromString("1001"),
              std::strong_ordering::equal);
}

TEST(BitVec, SortingIsDeterministic)
{
    std::vector<BitVec> vecs = {
        BitVec::fromString("110"), BitVec::fromString("011"),
        BitVec::fromString("101"), BitVec::fromString("001"),
    };
    std::sort(vecs.begin(), vecs.end());
    EXPECT_EQ(vecs[0].toString(), "001");
    EXPECT_EQ(vecs[1].toString(), "011");
    EXPECT_EQ(vecs[2].toString(), "101");
    EXPECT_EQ(vecs[3].toString(), "110");
}

TEST(BitVec, HashDistinguishesSizes)
{
    EXPECT_NE(BitVec(5).hash(), BitVec(6).hash());
    BitVec a(64);
    BitVec b(64);
    a.set(0, true);
    EXPECT_NE(a.hash(), b.hash());
}

TEST(BitVec, ClearResets)
{
    BitVec v = BitVec::ones(77);
    v.clear();
    EXPECT_TRUE(v.isZero());
    EXPECT_EQ(v.size(), 77u);
}
