/**
 * @file
 * Chaos tests for noise-hardened recovery: the quorum-read measurement
 * path, the session's UNSAT-core repair loop, and the graceful
 * degradation diagnosis must survive a FaultInjectionProxy configured
 * as an adversarial backend — and the whole stack must stay
 * bit-identical to the clean path when every chaos knob is at its
 * default.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "beer/beer.hh"
#include "beer/session.hh"
#include "dram/chip.hh"
#include "dram/fault_proxy.hh"
#include "ecc/code_equiv.hh"
#include "ecc/hamming.hh"

using namespace beer;
using beer::dram::ChipConfig;
using beer::dram::FaultInjectionConfig;
using beer::dram::FaultInjectionProxy;
using beer::dram::makeVendorConfig;
using beer::dram::SimulatedChip;

namespace
{

ChipConfig
testChipConfig(char vendor, std::size_t k, std::uint64_t seed)
{
    ChipConfig config = makeVendorConfig(vendor, k, seed);
    config.map.rows = 64;
    config.iidErrors = true;
    return config;
}

MeasureConfig
fastMeasure(const SimulatedChip &chip)
{
    MeasureConfig measure;
    measure.pausesSeconds.clear();
    for (double ber : {0.05, 0.15, 0.3})
        measure.pausesSeconds.push_back(
            chip.retentionModel().pauseForBitErrorRate(ber, 80.0));
    measure.repeatsPerPause = 25;
    measure.thresholdProbability = 1e-4;
    return measure;
}

/** The exhaustive (ground-truth) profile of @p code over 1-CHARGED
 *  patterns — what an ideal noise-free measurement converges to. */
MiscorrectionProfile
exhaustiveProfile(const ecc::LinearCode &code, std::size_t k)
{
    MiscorrectionProfile profile;
    profile.k = k;
    // {1,2}-CHARGED: the union the paper proves unique for shortened
    // codes (1-CHARGED alone is ambiguous at k=8).
    for (const TestPattern &pattern : chargedPatternUnion(k, {1, 2})) {
        PatternProfile entry;
        entry.pattern = pattern;
        entry.miscorrectable = gf2::BitVec(k);
        for (std::size_t bit = 0; bit < k; ++bit) {
            if (patternContains(pattern, bit))
                continue;
            if (miscorrectionPossible(code, pattern, bit))
                entry.miscorrectable.set(bit, true);
        }
        profile.patterns.push_back(std::move(entry));
    }
    return profile;
}

} // anonymous namespace

// With every chaos knob at its default the proxy must be a perfect
// pass-through: the full adaptive session recovers the identical
// function with the identical schedule, and no fault counter moves.
TEST(Chaos, DefaultProxyIsTransparentToSessions)
{
    SimulatedChip bare(testChipConfig('A', 16, 7001));
    SessionConfig config;
    config.measure = fastMeasure(bare);
    config.wordsUnderTest = dram::trueCellWords(bare);
    Session bare_session(bare, config);
    const RecoveryReport clean = bare_session.run();
    ASSERT_TRUE(clean.succeeded());

    SimulatedChip chip(testChipConfig('A', 16, 7001));
    FaultInjectionProxy proxy(chip, FaultInjectionConfig{});
    config.wordsUnderTest = dram::trueCellWords(chip);
    Session proxied_session(proxy, config);
    const RecoveryReport proxied = proxied_session.run();

    ASSERT_TRUE(proxied.succeeded());
    EXPECT_EQ(clean.counts.patterns, proxied.counts.patterns);
    EXPECT_EQ(clean.counts.errorCounts, proxied.counts.errorCounts);
    EXPECT_EQ(clean.profile, proxied.profile);
    EXPECT_TRUE(ecc::equivalent(clean.recoveredCode(),
                                proxied.recoveredCode()));
    EXPECT_EQ(clean.stats.patternMeasurements,
              proxied.stats.patternMeasurements);
    EXPECT_EQ(proxy.injectedFlips(), 0u);
    EXPECT_EQ(proxy.stuckAtHits(), 0u);
    EXPECT_EQ(proxy.patternHits(), 0u);
    EXPECT_EQ(proxy.stallsInjected(), 0u);
    EXPECT_EQ(proxied.stats.quorumDisagreements, 0u);
    EXPECT_EQ(proxied.diagnosis.outcome, SessionOutcome::Unique);
}

// Batched reads through the proxy must perturb identically to the
// scalar path: same read-back data, same injected-flip count.
TEST(Chaos, BatchedReadsMatchScalarFlipForFlip)
{
    FaultInjectionConfig chaos;
    chaos.transientFlipRate = 0.05;
    chaos.stuckAt.push_back({3, 2, true});
    chaos.seed = 42;

    SimulatedChip chip_a(testChipConfig('B', 8, 7002));
    SimulatedChip chip_b(testChipConfig('B', 8, 7002));
    FaultInjectionProxy scalar(chip_a, chaos);
    FaultInjectionProxy batched(chip_b, chaos);

    const std::vector<std::size_t> words = {0, 1, 2, 3, 4, 5, 6, 7};
    for (int round = 0; round < 10; ++round) {
        std::vector<gf2::BitVec> batch;
        batched.readDatawords(words.data(), words.size(), batch);
        for (std::size_t i = 0; i < words.size(); ++i)
            EXPECT_EQ(scalar.readDataword(words[i]), batch[i])
                << "round " << round << " word " << i;
    }
    EXPECT_EQ(scalar.injectedFlips(), batched.injectedFlips());
    EXPECT_EQ(scalar.stuckAtHits(), batched.stuckAtHits());
    EXPECT_GT(batched.injectedFlips(), 0u);
    EXPECT_GT(batched.stuckAtHits(), 0u);
    EXPECT_EQ(scalar.readOps(), batched.readOps());
}

// The acceptance differential: under transient + burst noise, quorum
// reads plus UNSAT-core repair must still recover the ground-truth
// function a clean session recovers, for k in {8, 16, 32}.
TEST(Chaos, DifferentialRecoveryUnderNoise)
{
    for (std::size_t k : {8u, 16u, 32u}) {
        SimulatedChip clean_chip(testChipConfig('A', k, 7100 + k));
        SessionConfig clean_config;
        clean_config.measure = fastMeasure(clean_chip);
        clean_config.wordsUnderTest = dram::trueCellWords(clean_chip);
        Session clean_session(clean_chip, clean_config);
        const RecoveryReport clean = clean_session.run();
        ASSERT_TRUE(clean.succeeded()) << "k=" << k;

        SimulatedChip chip(testChipConfig('A', k, 7100 + k));
        FaultInjectionConfig chaos;
        chaos.transientFlipRate = 1e-4;
        chaos.burst = {2048, 64, 5e-4};
        chaos.seed = 4242 + k;
        FaultInjectionProxy proxy(chip, chaos);

        SessionConfig config;
        config.measure = fastMeasure(chip);
        config.measure.quorum.votes = 3;
        config.measure.quorum.escalatedVotes = 7;
        config.repair.enabled = true;
        config.repair.maxAttempts = 4;
        config.repair.remeasureVotes = 7;
        config.wordsUnderTest = dram::trueCellWords(chip);
        Session session(proxy, config);
        const RecoveryReport noisy = session.run();

        ASSERT_TRUE(noisy.succeeded()) << "k=" << k;
        EXPECT_TRUE(ecc::equivalent(noisy.recoveredCode(),
                                    chip.groundTruthCode()))
            << "k=" << k;
        EXPECT_TRUE(ecc::equivalent(noisy.recoveredCode(),
                                    clean.recoveredCode()))
            << "k=" << k;
        EXPECT_EQ(noisy.diagnosis.outcome, SessionOutcome::Unique)
            << "k=" << k;
    }
}

// The adaptive quorum's value proposition: against the identical
// injected-fault schedule it recovers the same ground-truth function
// the fixed policy does, while spending fewer dataword read sweeps —
// clean patterns stop paying the full vote count.
TEST(Chaos, AdaptiveQuorumCheaperThanFixedAtEqualAccuracy)
{
    const std::size_t k = 16;
    SimulatedChip clean_chip(testChipConfig('A', k, 7150));
    SessionConfig clean_config;
    clean_config.measure = fastMeasure(clean_chip);
    clean_config.wordsUnderTest = dram::trueCellWords(clean_chip);
    Session clean_session(clean_chip, clean_config);
    const RecoveryReport clean = clean_session.run();
    ASSERT_TRUE(clean.succeeded());

    const auto run_arm = [&](bool adaptive) {
        SimulatedChip chip(testChipConfig('A', k, 7150));
        FaultInjectionConfig chaos;
        chaos.transientFlipRate = 1e-4;
        chaos.burst = {2048, 64, 5e-4};
        chaos.seed = 9000;
        FaultInjectionProxy proxy(chip, chaos);

        SessionConfig config;
        config.measure = fastMeasure(chip);
        config.measure.quorum.votes = 3;
        config.measure.quorum.escalatedVotes = 7;
        config.measure.quorum.adaptive = adaptive;
        config.repair.enabled = true;
        config.repair.maxAttempts = 4;
        config.repair.remeasureVotes = 7;
        config.wordsUnderTest = dram::trueCellWords(chip);
        Session session(proxy, config);
        const RecoveryReport report = session.run();
        EXPECT_TRUE(report.succeeded());
        EXPECT_TRUE(ecc::equivalent(report.recoveredCode(),
                                    chip.groundTruthCode()));
        EXPECT_TRUE(ecc::equivalent(report.recoveredCode(),
                                    clean.recoveredCode()));
        return report;
    };

    const RecoveryReport fixed = run_arm(/*adaptive=*/false);
    const RecoveryReport adaptive = run_arm(/*adaptive=*/true);
    EXPECT_GT(fixed.stats.quorumVotesSpent, 0u);
    EXPECT_LT(adaptive.stats.quorumVotesSpent,
              fixed.stats.quorumVotesSpent);
    // The noise was strong enough that some patterns escalated — the
    // savings come from selectivity, not from never escalating.
    EXPECT_GT(adaptive.stats.quorumEscalations, 0u);
}

// Quorum voting masks transient read noise the single-read path would
// swallow into the profile, and flags the disagreements it saw.
TEST(Chaos, QuorumVotesOutTransientNoise)
{
    SimulatedChip clean_chip(testChipConfig('C', 8, 7200));
    MeasureConfig measure = fastMeasure(clean_chip);
    const auto words = dram::trueCellWords(clean_chip);
    const auto patterns = chargedPatterns(8, 1);
    const ProfileCounts clean =
        measureProfile(clean_chip, patterns, measure, words);

    SimulatedChip chip(testChipConfig('C', 8, 7200));
    FaultInjectionConfig chaos;
    chaos.transientFlipRate = 1e-3;
    chaos.seed = 11;
    FaultInjectionProxy proxy(chip, chaos);
    measure.quorum.votes = 5;
    measure.quorum.escalatedVotes = 9;
    const ProfileCounts quorum =
        measureProfile(proxy, patterns, measure, words);

    // The noise really fired, the quorum really saw it...
    EXPECT_GT(proxy.injectedFlips(), 0u);
    EXPECT_GT(quorum.totalDisagreements(), 0u);
    // ...and the thresholded profile still matches the clean chip's.
    EXPECT_EQ(clean.threshold(measure.thresholdProbability),
              quorum.threshold(measure.thresholdProbability));
}

// One poisoned measurement round — a pattern-triggered deterministic
// corruption that expires before the repair re-measures — must be
// localized by the UNSAT-core probe, retracted, re-measured, and the
// session must still converge on the ground-truth function.
TEST(Chaos, RepairRetractsPoisonedRound)
{
    const std::size_t k = 16;
    SimulatedChip chip(testChipConfig('A', k, 7300));
    const auto words = dram::trueCellWords(chip);

    // Find a (pattern, bit) where the secret code can never
    // miscorrect; rate-1 corruption there is a hard contradiction.
    const ecc::LinearCode &secret = chip.groundTruthCode();
    TestPattern poisoned;
    std::size_t bad_bit = k;
    for (const TestPattern &pattern : chargedPatterns(k, 1)) {
        for (std::size_t bit = 0; bit < k && bad_bit == k; ++bit) {
            if (patternContains(pattern, bit))
                continue;
            if (!miscorrectionPossible(secret, pattern, bit)) {
                poisoned = pattern;
                bad_bit = bit;
            }
        }
        if (bad_bit != k)
            break;
    }
    ASSERT_NE(bad_bit, k) << "no contradiction site in this code";

    MeasureConfig measure = fastMeasure(chip);
    dram::PatternCorruption corruption;
    corruption.triggerData = datawordForPattern(poisoned, k,
                                                dram::CellType::True);
    corruption.bit = bad_bit;
    corruption.flipRate = 1.0;
    // Enough hits to poison the pattern's first full measurement
    // (words x pauses x repeats reads), then the fault goes away — the
    // transient-burst scenario repair exists for.
    corruption.maxHits = words.size() *
                         measure.pausesSeconds.size() *
                         measure.repeatsPerPause;

    FaultInjectionConfig chaos;
    chaos.patternFaults.push_back(corruption);
    FaultInjectionProxy proxy(chip, chaos);

    SessionConfig config;
    config.measure = measure;
    config.repair.enabled = true;
    config.repair.remeasureVotes = 5;
    config.wordsUnderTest = words;
    Session session(proxy, config);
    const RecoveryReport report = session.run();

    EXPECT_GT(proxy.patternHits(), 0u);
    ASSERT_TRUE(report.succeeded());
    EXPECT_TRUE(ecc::equivalent(report.recoveredCode(),
                                chip.groundTruthCode()));
    EXPECT_GE(report.stats.repairAttempts, 1u);
    EXPECT_GE(report.stats.roundsRetracted, 1u);
    EXPECT_GT(report.stats.patternsRemeasured, 0u);
    EXPECT_EQ(report.diagnosis.outcome, SessionOutcome::Unique);
}

// A persistent stuck-at fault contradicts every re-measurement, so
// repair must exhaust its attempts and the session must degrade
// gracefully into an Unsatisfiable diagnosis instead of throwing or
// claiming an answer.
TEST(Chaos, PersistentStuckAtDiagnosedUnsatisfiable)
{
    const std::size_t k = 16;
    SimulatedChip chip(testChipConfig('B', k, 7400));
    const auto words = dram::trueCellWords(chip);

    FaultInjectionConfig chaos;
    // Pin one data bit of several words high: patterns that discharge
    // that bit read a miscorrection no SEC function can explain.
    for (std::size_t i = 0; i < 4 && i < words.size(); ++i)
        chaos.stuckAt.push_back({words[i], 5, true});
    FaultInjectionProxy proxy(chip, chaos);

    SessionConfig config;
    config.measure = fastMeasure(chip);
    config.repair.enabled = true;
    config.repair.maxAttempts = 2;
    config.wordsUnderTest = words;
    Session session(proxy, config);
    const RecoveryReport report = session.run();

    EXPECT_GT(proxy.stuckAtHits(), 0u);
    EXPECT_FALSE(report.succeeded());
    EXPECT_EQ(report.diagnosis.outcome, SessionOutcome::Unsatisfiable);
    EXPECT_FALSE(report.diagnosis.detail.empty());
    EXPECT_EQ(report.diagnosis.repairAttempts, 2u);
    // The machine-readable form carries the same verdict.
    EXPECT_NE(report.diagnosis.toJson().find("\"unsatisfiable\""),
              std::string::npos);
}

// Injected read stalls against a session deadline: the session must
// stop on time and say why, not hang or crash.
TEST(Chaos, DeadlineExceededUnderReadStalls)
{
    SimulatedChip chip(testChipConfig('A', 16, 7500));
    FaultInjectionConfig chaos;
    chaos.stallEveryReads = 16;
    chaos.stallSeconds = 0.01;
    FaultInjectionProxy proxy(chip, chaos);

    SessionConfig config;
    config.measure = fastMeasure(chip);
    config.deadlineSeconds = 0.05;
    config.wordsUnderTest = dram::trueCellWords(chip);
    Session session(proxy, config);
    const RecoveryReport report = session.run();

    EXPECT_GT(proxy.stallsInjected(), 0u);
    EXPECT_EQ(report.diagnosis.outcome,
              SessionOutcome::DeadlineExceeded);
    EXPECT_FALSE(report.diagnosis.detail.empty());
    EXPECT_GT(report.diagnosis.elapsedSeconds, 0.0);
}

// A measurement budget bounds the experiment count the same way.
TEST(Chaos, MeasurementBudgetExhaustionDiagnosed)
{
    SimulatedChip chip(testChipConfig('A', 16, 7600));
    SessionConfig config;
    config.measure = fastMeasure(chip);
    config.measurementBudget = 2;
    config.wordsUnderTest = dram::trueCellWords(chip);
    Session session(chip, config);
    const RecoveryReport report = session.run();

    EXPECT_EQ(report.diagnosis.outcome,
              SessionOutcome::BudgetExhausted);
    EXPECT_FALSE(report.diagnosis.detail.empty());
}

// Seed-pinned contract: a self-contradictory profile has zero
// consistent ECC functions, the enumeration proves it (complete with
// an empty solution list), and it does not throw.
TEST(Diagnosis, ContradictoryProfileHasZeroSolutions)
{
    const std::size_t k = 8;
    const ecc::LinearCode code = ecc::canonicalSecCode(k);
    MiscorrectionProfile profile = exhaustiveProfile(code, k);

    // Sanity: the honest profile identifies the function.
    const BeerSolveResult honest = solveForEccFunction(profile);
    ASSERT_TRUE(honest.unique());

    // Claim a miscorrection at a position the code can never produce.
    bool poisoned = false;
    for (PatternProfile &entry : profile.patterns) {
        for (std::size_t bit = 0; bit < k && !poisoned; ++bit) {
            if (patternContains(entry.pattern, bit) ||
                entry.miscorrectable.get(bit))
                continue;
            entry.miscorrectable.set(bit, true);
            poisoned = true;
        }
        if (poisoned)
            break;
    }
    ASSERT_TRUE(poisoned);

    const BeerSolveResult contradicted = solveForEccFunction(profile);
    EXPECT_TRUE(contradicted.complete);
    EXPECT_TRUE(contradicted.solutions.empty());
}
