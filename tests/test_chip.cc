/**
 * @file
 * Tests for the simulated DRAM chip: data path integrity, retention
 * error semantics (unidirectional, persistent, repeatable), transient
 * noise, and vendor configurations.
 */

#include <gtest/gtest.h>

#include "dram/chip.hh"
#include "ecc/hamming.hh"
#include "util/rng.hh"

using namespace beer::dram;
using beer::ecc::randomSecCode;
using beer::gf2::BitVec;
using beer::util::Rng;

namespace
{

ChipConfig
smallConfig(std::uint64_t seed = 1)
{
    ChipConfig config = makeVendorConfig('A', 16, seed);
    config.map.rows = 32;
    return config;
}

BitVec
randomData(std::size_t k, Rng &rng)
{
    BitVec data(k);
    for (std::size_t i = 0; i < k; ++i)
        data.set(i, rng.bernoulli(0.5));
    return data;
}

} // anonymous namespace

TEST(Chip, WriteReadRoundTrip)
{
    Chip chip(smallConfig());
    Rng rng(3);
    for (std::size_t w = 0; w < chip.numWords(); ++w) {
        const BitVec data = randomData(chip.datawordBits(), rng);
        chip.writeDataword(w, data);
        EXPECT_EQ(chip.readDataword(w), data);
    }
}

TEST(Chip, ByteInterfaceRoundTrip)
{
    Chip chip(smallConfig());
    Rng rng(5);
    std::vector<std::uint8_t> image(chip.numBytes());
    for (std::size_t addr = 0; addr < chip.numBytes(); ++addr) {
        image[addr] = (std::uint8_t)rng.below(256);
        chip.writeByte(addr, image[addr]);
    }
    for (std::size_t addr = 0; addr < chip.numBytes(); ++addr)
        EXPECT_EQ(chip.readByte(addr), image[addr]);
}

TEST(Chip, FillWritesEveryByte)
{
    Chip chip(smallConfig());
    chip.fill(0xA5);
    for (std::size_t addr = 0; addr < chip.numBytes(); ++addr)
        EXPECT_EQ(chip.readByte(addr), 0xA5);
}

TEST(Chip, StoredCodewordsAreValid)
{
    Chip chip(smallConfig());
    Rng rng(7);
    for (std::size_t w = 0; w < chip.numWords(); ++w) {
        chip.writeDataword(w, randomData(chip.datawordBits(), rng));
        EXPECT_TRUE(chip.groundTruthCode()
                        .syndrome(chip.storedCodeword(w))
                        .isZero());
    }
}

TEST(Chip, RetentionErrorsAreUnidirectional)
{
    // True-cells decay 1 -> 0 only: with all-zero data (and the
    // all-zero codeword), no retention errors can occur.
    ChipConfig config = smallConfig();
    Chip chip(config);
    for (std::size_t w = 0; w < chip.numWords(); ++w)
        chip.writeDataword(w, BitVec(chip.datawordBits()));
    chip.pauseRefresh(36000.0, 80.0);
    EXPECT_EQ(chip.rawErrorCount(), 0u);

    // With all-ones data, a long pause must produce errors.
    for (std::size_t w = 0; w < chip.numWords(); ++w)
        chip.writeDataword(w, BitVec::ones(chip.datawordBits()));
    chip.pauseRefresh(36000.0, 80.0);
    EXPECT_GT(chip.rawErrorCount(), 0u);

    // Every stored bit only went 1 -> 0.
    for (std::size_t w = 0; w < chip.numWords(); ++w) {
        const BitVec &stored = chip.storedCodeword(w);
        const BitVec reference = chip.groundTruthCode().encode(
            BitVec::ones(chip.datawordBits()));
        EXPECT_TRUE(stored.isSubsetOf(reference));
    }
}

TEST(Chip, AntiCellsDecayZeroToOne)
{
    ChipConfig config = makeVendorConfig('C', 16, 9);
    config.map.rows = 40;
    Chip chip(config);

    // All-ones data: anti-cell rows hold DISCHARGED data cells (no
    // data errors; their parity cells storing '0' are CHARGED and may
    // decay 0 -> 1); true-cell rows decay 1 -> 0 everywhere.
    for (std::size_t w = 0; w < chip.numWords(); ++w)
        chip.writeDataword(w, BitVec::ones(chip.datawordBits()));
    chip.pauseRefresh(36000.0, 80.0);

    for (std::size_t w = 0; w < chip.numWords(); ++w) {
        const BitVec reference = chip.groundTruthCode().encode(
            BitVec::ones(chip.datawordBits()));
        const BitVec &stored = chip.storedCodeword(w);
        const std::size_t k = chip.datawordBits();
        if (chip.cellTypeOfWord(w) == CellType::Anti) {
            // Data cells (all DISCHARGED) never flip; parity decay is
            // 0 -> 1 only, so the stored word is a superset.
            EXPECT_EQ(stored.slice(0, k), reference.slice(0, k));
            EXPECT_TRUE(reference.isSubsetOf(stored));
        } else {
            EXPECT_TRUE(stored.isSubsetOf(reference));
        }
    }
}

TEST(Chip, RetentionErrorsPersistUntilRewrite)
{
    ChipConfig config = smallConfig();
    Chip chip(config);
    const BitVec ones = BitVec::ones(chip.datawordBits());
    for (std::size_t w = 0; w < chip.numWords(); ++w)
        chip.writeDataword(w, ones);
    chip.pauseRefresh(360000.0, 80.0);
    ASSERT_GT(chip.rawErrorCount(), 0u);

    // Find a word with an uncorrectable error (read differs).
    bool found = false;
    for (std::size_t w = 0; w < chip.numWords(); ++w) {
        if (chip.readDataword(w) != ones) {
            found = true;
            // Reading again gives the same answer (errors persist).
            EXPECT_EQ(chip.readDataword(w), chip.readDataword(w));
            // Rewriting clears the errors.
            chip.writeDataword(w, ones);
            EXPECT_EQ(chip.readDataword(w), ones);
            break;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Chip, PerCellModeIsRepeatable)
{
    // Two chips with the same seed develop identical error patterns.
    Chip a(smallConfig(42));
    Chip b(smallConfig(42));
    const BitVec ones = BitVec::ones(a.datawordBits());
    for (std::size_t w = 0; w < a.numWords(); ++w) {
        a.writeDataword(w, ones);
        b.writeDataword(w, ones);
    }
    a.pauseRefresh(36000.0, 80.0);
    b.pauseRefresh(36000.0, 80.0);
    for (std::size_t w = 0; w < a.numWords(); ++w)
        EXPECT_EQ(a.storedCodeword(w), b.storedCodeword(w));
}

TEST(Chip, IidModeSamplesFreshErrors)
{
    ChipConfig config = smallConfig(43);
    config.iidErrors = true;
    Chip chip(config);
    const BitVec ones = BitVec::ones(chip.datawordBits());

    // Two identical experiments should (with overwhelming probability)
    // hit different cells.
    auto run = [&] {
        std::vector<BitVec> stored;
        for (std::size_t w = 0; w < chip.numWords(); ++w)
            chip.writeDataword(w, ones);
        chip.pauseRefresh(36000.0, 80.0);
        for (std::size_t w = 0; w < chip.numWords(); ++w)
            stored.push_back(chip.storedCodeword(w));
        return stored;
    };
    EXPECT_NE(run(), run());
}

TEST(Chip, SingleRetentionErrorIsCorrectedByOnDieEcc)
{
    // At a BER where words have at most one error each, reads are
    // clean even though raw errors exist.
    ChipConfig config = smallConfig(44);
    config.iidErrors = true;
    Chip chip(config);
    const BitVec ones = BitVec::ones(chip.datawordBits());
    const double pause =
        chip.retentionModel().pauseForBitErrorRate(1e-3, 80.0);

    std::uint64_t trials = 0;
    std::uint64_t visible = 0;
    for (int round = 0; round < 50; ++round) {
        for (std::size_t w = 0; w < chip.numWords(); ++w)
            chip.writeDataword(w, ones);
        chip.pauseRefresh(pause, 80.0);
        for (std::size_t w = 0; w < chip.numWords(); ++w) {
            ++trials;
            visible += chip.readDataword(w) != ones;
        }
    }
    ASSERT_GT(chip.rawErrorCount(), 0u);
    // Visible (post-correction) error rate is far below the raw rate:
    // most words had 0 or 1 raw errors.
    EXPECT_LT((double)visible / (double)trials, 1e-2);
}

TEST(Chip, TransientNoiseDoesNotPersist)
{
    ChipConfig config = smallConfig(45);
    config.transientErrorRate = 0.02;
    Chip chip(config);
    const BitVec ones = BitVec::ones(chip.datawordBits());
    chip.writeDataword(0, ones);

    // Transient flips occasionally corrupt reads, but the stored
    // codeword never changes.
    int corrupted_reads = 0;
    for (int round = 0; round < 300; ++round)
        corrupted_reads += chip.readDataword(0) != ones;
    EXPECT_GT(corrupted_reads, 0);
    EXPECT_EQ(chip.storedCodeword(0),
              chip.groundTruthCode().encode(ones));
}

TEST(Chip, VendorConfigsMatchPaperObservations)
{
    // A and B: all true-cells. C: mixed true/anti rows.
    for (char vendor : {'A', 'B'}) {
        ChipConfig config = makeVendorConfig(vendor, 16, 1);
        Chip chip(config);
        for (std::size_t w = 0; w < chip.numWords(); ++w)
            EXPECT_EQ(chip.cellTypeOfWord(w), CellType::True);
    }
    ChipConfig config = makeVendorConfig('C', 16, 1);
    Chip chip(config);
    bool saw_true = false;
    bool saw_anti = false;
    for (std::size_t w = 0; w < chip.numWords(); ++w) {
        saw_true |= chip.cellTypeOfWord(w) == CellType::True;
        saw_anti |= chip.cellTypeOfWord(w) == CellType::Anti;
    }
    EXPECT_TRUE(saw_true);
    EXPECT_TRUE(saw_anti);

    // Different vendors get different secret functions.
    EXPECT_FALSE(makeVendorConfig('A', 16, 1).code ==
                 makeVendorConfig('B', 16, 1).code);
}
