/**
 * @file
 * Tests for the CLI parser and table printer used by every bench and
 * example binary.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.hh"
#include "util/table.hh"

using namespace beer::util;

namespace
{

std::vector<char *>
argvOf(std::vector<std::string> &args)
{
    std::vector<char *> out;
    for (auto &arg : args)
        out.push_back(arg.data());
    return out;
}

} // anonymous namespace

TEST(Cli, DefaultsApply)
{
    Cli cli("test");
    cli.addOption("count", "42", "a count");
    cli.addFlag("verbose", "a flag");
    std::vector<std::string> args = {"prog"};
    auto argv = argvOf(args);
    cli.parse((int)argv.size(), argv.data());
    EXPECT_EQ(cli.getInt("count"), 42);
    EXPECT_FALSE(cli.getBool("verbose"));
}

TEST(Cli, SpaceAndEqualsForms)
{
    Cli cli("test");
    cli.addOption("rate", "0", "a rate");
    cli.addOption("name", "x", "a name");
    cli.addFlag("on", "a flag");
    std::vector<std::string> args = {"prog", "--rate", "2.5",
                                     "--name=hello", "--on"};
    auto argv = argvOf(args);
    cli.parse((int)argv.size(), argv.data());
    EXPECT_DOUBLE_EQ(cli.getDouble("rate"), 2.5);
    EXPECT_EQ(cli.getString("name"), "hello");
    EXPECT_TRUE(cli.getBool("on"));
}

TEST(Cli, NegativeAndHexIntegers)
{
    Cli cli("test");
    cli.addOption("x", "0", "");
    std::vector<std::string> args = {"prog", "--x", "-7"};
    auto argv = argvOf(args);
    cli.parse((int)argv.size(), argv.data());
    EXPECT_EQ(cli.getInt("x"), -7);

    Cli cli2("test");
    cli2.addOption("x", "0", "");
    std::vector<std::string> args2 = {"prog", "--x", "0x10"};
    auto argv2 = argvOf(args2);
    cli2.parse((int)argv2.size(), argv2.data());
    EXPECT_EQ(cli2.getInt("x"), 16);
}

using CliDeath = ::testing::Test;

TEST(CliDeath, UnknownOptionIsFatal)
{
    Cli cli("test");
    cli.addOption("x", "0", "");
    std::vector<std::string> args = {"prog", "--y", "1"};
    auto argv = argvOf(args);
    EXPECT_DEATH(cli.parse((int)argv.size(), argv.data()), "unknown");
}

TEST(CliDeath, MissingValueIsFatal)
{
    Cli cli("test");
    cli.addOption("x", "0", "");
    std::vector<std::string> args = {"prog", "--x"};
    auto argv = argvOf(args);
    EXPECT_DEATH(cli.parse((int)argv.size(), argv.data()),
                 "requires a value");
}

TEST(CliDeath, NonNumericValueIsFatal)
{
    Cli cli("test");
    cli.addOption("x", "0", "");
    std::vector<std::string> args = {"prog", "--x", "abc"};
    auto argv = argvOf(args);
    cli.parse((int)argv.size(), argv.data());
    EXPECT_DEATH((void)cli.getInt("x"), "integer");
}

TEST(Table, AlignedOutput)
{
    Table table({"name", "value"});
    table.addRowOf("alpha", 1);
    table.addRowOf("b", 22);
    std::ostringstream os;
    table.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    // Columns aligned: 'value' header and '22' start at same offset in
    // their lines.
    EXPECT_NE(text.find("-----"), std::string::npos);
}

TEST(Table, CsvEscaping)
{
    Table table({"a", "b"});
    table.addRowOf("x,y", "quote\"inside");
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"quote\"\"inside\"\n");
}

TEST(Table, Formatters)
{
    EXPECT_EQ(Table::fixed(1.23456, 2), "1.23");
    EXPECT_EQ(Table::sci(12345.0, 2), "1.23e+04");
    EXPECT_EQ(Table::cell(7), "7");
    EXPECT_EQ(Table::cell(3.5), "3.5");
}

TEST(Table, RowArityChecked)
{
    Table table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "assertion");
}
