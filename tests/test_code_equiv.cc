/**
 * @file
 * Tests for code equivalence under parity-row permutation — the
 * equivalence class BEER recovers codes up to (paper Section 4.2.1).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "ecc/code_equiv.hh"
#include "ecc/hamming.hh"
#include "util/rng.hh"

using namespace beer::ecc;
using beer::gf2::Matrix;
using beer::util::Rng;

namespace
{

LinearCode
permuteRows(const LinearCode &code, const std::vector<std::size_t> &perm)
{
    const Matrix &p = code.pMatrix();
    Matrix out(p.rows(), p.cols());
    for (std::size_t r = 0; r < p.rows(); ++r)
        out.row(r) = p.row(perm[r]);
    return LinearCode(std::move(out));
}

} // anonymous namespace

TEST(CodeEquiv, CanonicalizeSortsRows)
{
    const LinearCode code(Matrix{
        {1, 1, 0},
        {0, 1, 1},
        {1, 0, 1},
    });
    const LinearCode canonical = canonicalize(code);
    EXPECT_TRUE(isCanonical(canonical));
    // Rows sorted ascending with bit 0 most significant:
    // 011 < 101 < 110.
    EXPECT_EQ(canonical.pMatrix().row(0).toString(), "011");
    EXPECT_EQ(canonical.pMatrix().row(1).toString(), "101");
    EXPECT_EQ(canonical.pMatrix().row(2).toString(), "110");
}

TEST(CodeEquiv, RowPermutationsAreEquivalent)
{
    Rng rng(3);
    const LinearCode code = randomSecCode(10, rng);
    const std::size_t p = code.numParityBits();

    std::vector<std::size_t> perm(p);
    std::iota(perm.begin(), perm.end(), 0);
    for (int round = 0; round < 20; ++round) {
        // Random permutation.
        for (std::size_t i = 0; i + 1 < p; ++i) {
            const std::size_t j = i + rng.below(p - i);
            std::swap(perm[i], perm[j]);
        }
        const LinearCode permuted = permuteRows(code, perm);
        EXPECT_TRUE(equivalent(code, permuted));
        EXPECT_EQ(canonicalize(code), canonicalize(permuted));
    }
}

TEST(CodeEquiv, DifferentCodesNotEquivalent)
{
    Rng rng(5);
    const LinearCode a = randomSecCode(16, rng);
    const LinearCode b = randomSecCode(16, rng);
    ASSERT_FALSE(a == b);
    EXPECT_FALSE(equivalent(a, b));
}

TEST(CodeEquiv, DifferentShapesNotEquivalent)
{
    Rng rng(7);
    const LinearCode a = randomSecCode(8, rng);
    const LinearCode b = randomSecCode(9, rng);
    EXPECT_FALSE(equivalent(a, b));
}

TEST(CodeEquiv, CanonicalizeIsIdempotent)
{
    Rng rng(9);
    for (int round = 0; round < 10; ++round) {
        const LinearCode code = randomSecCode(12, rng);
        const LinearCode once = canonicalize(code);
        EXPECT_EQ(canonicalize(once), once);
        EXPECT_TRUE(isCanonical(once));
    }
}

TEST(CodeEquiv, EquivalentCodesShareErrorBehaviour)
{
    // Permuting parity rows relabels parity cells: externally visible
    // decoding of data errors is identical.
    Rng rng(11);
    const LinearCode code = randomSecCode(8, rng);
    std::vector<std::size_t> perm = {2, 0, 3, 1};
    const LinearCode permuted = permuteRows(code, perm);

    beer::gf2::BitVec data(8);
    for (std::size_t i = 0; i < 8; ++i)
        data.set(i, rng.bernoulli(0.5));

    for (std::size_t a = 0; a < 8; ++a) {
        for (std::size_t b = a + 1; b < 8; ++b) {
            // Inject a double *data* error and compare which data bit
            // each decoder flips.
            auto run = [&](const LinearCode &c) {
                auto received = c.encode(data);
                received.flip(a);
                received.flip(b);
                const auto syndrome = c.syndrome(received);
                const std::size_t pos = c.findColumn(syndrome);
                return pos < c.k() ? pos : SIZE_MAX;
            };
            EXPECT_EQ(run(code), run(permuted));
        }
    }
}
