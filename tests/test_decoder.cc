/**
 * @file
 * Tests for syndrome decoding and outcome classification (paper
 * Section 3.3's taxonomy: correction, partial correction,
 * miscorrection, silent corruption).
 */

#include <gtest/gtest.h>

#include "ecc/decoder.hh"
#include "ecc/hamming.hh"
#include "gf2/matrix.hh"
#include "util/rng.hh"

using namespace beer::ecc;
using beer::gf2::BitVec;
using beer::gf2::Matrix;
using beer::util::Rng;

TEST(Decoder, NoErrorPassesThrough)
{
    const LinearCode code = paperExampleCode();
    const BitVec data = BitVec::fromString("1011");
    const BitVec codeword = code.encode(data);
    const DecodeResult result = decode(code, codeword);
    EXPECT_EQ(result.dataword, data);
    EXPECT_EQ(result.flippedBit, SIZE_MAX);
    EXPECT_EQ(classify(code, codeword, codeword, result),
              DecodeOutcome::NoError);
}

TEST(Decoder, CorrectsEverySingleBitError)
{
    const LinearCode code = paperExampleCode();
    for (std::uint32_t d = 0; d < 16; ++d) {
        BitVec data(4);
        for (std::size_t i = 0; i < 4; ++i)
            data.set(i, (d >> i) & 1);
        const BitVec codeword = code.encode(data);
        for (std::size_t pos = 0; pos < code.n(); ++pos) {
            BitVec received = codeword;
            received.flip(pos);
            const DecodeResult result = decode(code, received);
            EXPECT_EQ(result.dataword, data);
            EXPECT_EQ(result.flippedBit, pos);
            EXPECT_EQ(classify(code, codeword, received, result),
                      DecodeOutcome::Corrected);
        }
    }
}

TEST(Decoder, DoubleErrorNeverCorrectsSilently)
{
    // For a SEC Hamming code, two errors always produce a nonzero
    // syndrome (distance 3), so the decoder always acts or detects.
    const LinearCode code = paperExampleCode();
    const BitVec codeword = code.encode(BitVec::fromString("0110"));
    for (std::size_t a = 0; a < code.n(); ++a) {
        for (std::size_t b = a + 1; b < code.n(); ++b) {
            BitVec received = codeword;
            received.flip(a);
            received.flip(b);
            const DecodeResult result = decode(code, received);
            const DecodeOutcome outcome =
                classify(code, codeword, received, result);
            EXPECT_NE(outcome, DecodeOutcome::NoError);
            EXPECT_NE(outcome, DecodeOutcome::Corrected);
            EXPECT_NE(outcome, DecodeOutcome::SilentCorruption);
        }
    }
}

TEST(Decoder, MiscorrectionExample)
{
    // With the (7,4,3) example code, flipping parity bits 5 and 6
    // (columns 010 and 001) gives syndrome 011 = column of data bit 3:
    // the decoder "corrects" an error-free bit — a miscorrection.
    const LinearCode code = paperExampleCode();
    const BitVec data = BitVec::fromString("0000");
    const BitVec codeword = code.encode(data);
    BitVec received = codeword;
    received.flip(5);
    received.flip(6);
    const DecodeResult result = decode(code, received);
    EXPECT_EQ(result.flippedBit, 3u);
    EXPECT_EQ(classify(code, codeword, received, result),
              DecodeOutcome::Miscorrection);
    // The dataword now has an error the raw word never had.
    EXPECT_NE(result.dataword, data);
}

TEST(Decoder, PartialCorrectionExample)
{
    // Flipping data bit 2 (column 101) and parity bit 4 (column 100)
    // gives syndrome 001 = column of parity bit 6; the decoder flips a
    // parity bit. The data error at bit 2 remains: from the codeword
    // point of view this is neither full correction nor miscorrection.
    const LinearCode code = paperExampleCode();
    const BitVec codeword = code.encode(BitVec::fromString("0000"));
    BitVec received = codeword;
    received.flip(2);
    received.flip(4);
    const DecodeResult result = decode(code, received);
    ASSERT_NE(result.flippedBit, SIZE_MAX);
    const DecodeOutcome outcome =
        classify(code, codeword, received, result);
    // Syndrome = col2 ^ col4 = 101 ^ 100 = 001 -> flips parity bit 6,
    // which had no raw error: a miscorrection (in the parity bits).
    EXPECT_EQ(result.flippedBit, 6u);
    EXPECT_EQ(outcome, DecodeOutcome::Miscorrection);
}

TEST(Decoder, TripleErrorCanBeSilent)
{
    // Three errors forming a codeword (distance-3 support) give a zero
    // syndrome: silent data corruption.
    const LinearCode code = paperExampleCode();
    const BitVec zero = code.encode(BitVec::fromString("0000"));
    // encode(0001) = 0001011 has weight 3: flip those positions.
    BitVec received = zero;
    received.flip(3);
    received.flip(5);
    received.flip(6);
    const DecodeResult result = decode(code, received);
    EXPECT_EQ(result.flippedBit, SIZE_MAX);
    EXPECT_EQ(classify(code, zero, received, result),
              DecodeOutcome::SilentCorruption);
}

TEST(Decoder, ShortenedCodeDetectedUncorrectable)
{
    // (6,3) shortened code whose columns are 011, 101, 110 plus the
    // identity; syndrome 111 matches no column.
    const LinearCode code(Matrix{
        {0, 1, 1},
        {1, 0, 1},
        {1, 1, 0},
    });
    const BitVec codeword = code.encode(BitVec::fromString("000"));
    // Flip parity bits 3, 4, 5 (in codeword positions k..k+2):
    // syndrome = 111.
    BitVec received = codeword;
    received.flip(3);
    received.flip(4);
    received.flip(5);
    const DecodeResult result = decode(code, received);
    EXPECT_EQ(result.flippedBit, SIZE_MAX);
    EXPECT_TRUE(result.detectedUncorrectable);
    EXPECT_EQ(classify(code, codeword, received, result),
              DecodeOutcome::DetectedUncorrectable);
}

TEST(Decoder, OutcomeNamesAreStable)
{
    EXPECT_EQ(outcomeName(DecodeOutcome::NoError), "No error");
    EXPECT_EQ(outcomeName(DecodeOutcome::Corrected), "Correctable");
    EXPECT_EQ(outcomeName(DecodeOutcome::Miscorrection),
              "Miscorrection");
}

TEST(Decoder, ClassificationPartitionProperty)
{
    // Every (codeword, error pattern) pair maps to exactly one outcome
    // and decode() is deterministic: cross-check over all error
    // patterns for a small random code.
    Rng rng(23);
    const LinearCode code = randomSecCode(4, rng);
    const BitVec data = BitVec::fromString("1100");
    const BitVec codeword = code.encode(data);
    std::size_t miscorrections = 0;
    for (std::uint32_t e = 0; e < (1u << code.n()); ++e) {
        BitVec received = codeword;
        for (std::size_t i = 0; i < code.n(); ++i)
            if ((e >> i) & 1)
                received.flip(i);
        const DecodeResult result = decode(code, received);
        const DecodeOutcome outcome =
            classify(code, codeword, received, result);
        if (outcome == DecodeOutcome::Miscorrection)
            ++miscorrections;
        // Post-correction codeword differs from received only at the
        // flipped bit.
        BitVec delta = result.codeword ^ received;
        if (result.flippedBit == SIZE_MAX) {
            EXPECT_TRUE(delta.isZero());
        } else {
            EXPECT_EQ(delta.popcount(), 1u);
            EXPECT_TRUE(delta.get(result.flippedBit));
        }
    }
    // Uncorrectable patterns must have produced some miscorrections.
    EXPECT_GT(miscorrections, 0u);
}
