/**
 * @file
 * Tests for the pre-BEER reverse-engineering steps: true-/anti-cell
 * survey (paper Section 5.1.1) and ECC dataword layout discovery
 * (Section 5.1.2), all through the chip's external interface.
 */

#include <gtest/gtest.h>

#include <set>

#include "beer/discovery.hh"
#include "dram/chip.hh"

using namespace beer;
using beer::dram::CellType;
using beer::dram::Chip;
using beer::dram::ChipConfig;
using beer::dram::makeVendorConfig;

TEST(Discovery, CellTypesAllTrueVendor)
{
    ChipConfig config = makeVendorConfig('A', 16, 3);
    config.map.rows = 32;
    config.iidErrors = true;
    Chip chip(config);

    const double pause =
        chip.retentionModel().pauseForBitErrorRate(0.2, 80.0);
    const auto survey = discoverCellTypes(chip, pause, 80.0);

    ASSERT_EQ(survey.rowTypes.size(), 32u);
    for (std::size_t row = 0; row < 32; ++row)
        EXPECT_EQ(survey.rowTypes[row], CellType::True) << row;
    EXPECT_EQ(survey.trueRows().size(), 32u);
}

TEST(Discovery, CellTypesMixedVendorC)
{
    ChipConfig config = makeVendorConfig('C', 16, 5);
    config.map.rows = 40;
    config.iidErrors = true;
    Chip chip(config);

    const double pause =
        chip.retentionModel().pauseForBitErrorRate(0.2, 80.0);
    const auto survey = discoverCellTypes(chip, pause, 80.0);

    for (std::size_t row = 0; row < 40; ++row) {
        EXPECT_EQ(survey.rowTypes[row],
                  config.cellLayout.typeOfRow(row))
            << row;
    }
    // The survey's raw counts separate cleanly: true rows fail under
    // ones, anti rows under zeros.
    for (std::size_t row = 0; row < 40; ++row) {
        if (survey.rowTypes[row] == CellType::True) {
            EXPECT_GT(survey.onesErrors[row], survey.zerosErrors[row]);
        } else {
            EXPECT_GT(survey.zerosErrors[row], survey.onesErrors[row]);
        }
    }
}

TEST(Discovery, WordLayoutFindsByteInterleaving)
{
    // The chip interleaves two ECC words per region at byte
    // granularity; co-occurrence clustering must discover exactly
    // that: even offsets together, odd offsets together.
    ChipConfig config = makeVendorConfig('A', 16, 7);
    config.map.rows = 64;
    config.iidErrors = true;
    Chip chip(config);

    const double pause =
        chip.retentionModel().pauseForBitErrorRate(0.25, 80.0);
    const auto types = discoverCellTypes(chip, pause, 80.0);
    const auto survey =
        discoverWordLayout(chip, types, pause, 80.0, 6);

    const auto &map = chip.addressMap();
    ASSERT_EQ(survey.laneOfByteOffset.size(), map.bytesPerRow);

    // Ground truth: byte offset b belongs to word slot
    // slotOfByte(b).wordIndex within the row.
    for (std::size_t a = 0; a < map.bytesPerRow; ++a) {
        for (std::size_t b = 0; b < map.bytesPerRow; ++b) {
            const bool same_word = map.slotOfByte(a).wordIndex ==
                                   map.slotOfByte(b).wordIndex;
            EXPECT_EQ(survey.laneOfByteOffset[a] ==
                          survey.laneOfByteOffset[b],
                      same_word)
                << "offsets " << a << "," << b;
        }
    }
    // Two words per row at 16 bits (2 bytes) per word -> groups of 2.
    const std::size_t words_per_row = map.wordsPerRow();
    EXPECT_EQ(survey.wordGroups.size(), words_per_row);
}

TEST(Discovery, WordLayoutOnMixedCellChip)
{
    ChipConfig config = makeVendorConfig('C', 16, 9);
    config.map.rows = 40;
    config.iidErrors = true;
    Chip chip(config);

    const double pause =
        chip.retentionModel().pauseForBitErrorRate(0.25, 80.0);
    const auto types = discoverCellTypes(chip, pause, 80.0);
    const auto survey =
        discoverWordLayout(chip, types, pause, 80.0, 6);

    const auto &map = chip.addressMap();
    for (std::size_t a = 0; a < map.bytesPerRow; ++a)
        for (std::size_t b = 0; b < map.bytesPerRow; ++b)
            EXPECT_EQ(survey.laneOfByteOffset[a] ==
                          survey.laneOfByteOffset[b],
                      map.slotOfByte(a).wordIndex ==
                          map.slotOfByte(b).wordIndex);
}
