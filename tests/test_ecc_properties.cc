/**
 * @file
 * Parameterized property tests over the ECC layer: for every swept
 * dataword length and several random codes each, the fundamental
 * invariants of systematic SEC codes must hold. These complement the
 * example-driven tests in test_linear_code.cc / test_decoder.cc with
 * breadth across the k range BEER targets.
 */

#include <gtest/gtest.h>

#include "beer/profile.hh"
#include "ecc/code_equiv.hh"
#include "ecc/decoder.hh"
#include "ecc/hamming.hh"
#include "ecc/secded.hh"
#include "util/rng.hh"

using namespace beer::ecc;
using beer::gf2::BitVec;
using beer::util::Rng;

namespace
{

BitVec
randomData(std::size_t k, Rng &rng)
{
    BitVec data(k);
    for (std::size_t i = 0; i < k; ++i)
        data.set(i, rng.bernoulli(0.5));
    return data;
}

} // anonymous namespace

class EccProperties : public ::testing::TestWithParam<std::size_t>
{
  protected:
    std::size_t k() const { return GetParam(); }
};

TEST_P(EccProperties, GeneratorAndParityCheckAreOrthogonal)
{
    Rng rng(100 + k());
    for (int round = 0; round < 3; ++round) {
        const LinearCode code = randomSecCode(k(), rng);
        const auto product =
            code.parityCheckMatrix().mul(code.generatorMatrix());
        EXPECT_EQ(product,
                  beer::gf2::Matrix(code.numParityBits(), code.k()));
    }
}

TEST_P(EccProperties, EncodeRoundTripsThroughDecode)
{
    Rng rng(200 + k());
    const LinearCode code = randomSecCode(k(), rng);
    for (int round = 0; round < 20; ++round) {
        const BitVec data = randomData(k(), rng);
        const auto result = decode(code, code.encode(data));
        EXPECT_EQ(result.dataword, data);
        EXPECT_EQ(result.flippedBit, SIZE_MAX);
    }
}

TEST_P(EccProperties, EverySingleErrorIsCorrected)
{
    Rng rng(300 + k());
    const LinearCode code = randomSecCode(k(), rng);
    const BitVec data = randomData(k(), rng);
    const BitVec codeword = code.encode(data);
    for (std::size_t pos = 0; pos < code.n(); ++pos) {
        BitVec received = codeword;
        received.flip(pos);
        const auto result = decode(code, received);
        EXPECT_EQ(result.dataword, data) << pos;
        EXPECT_EQ(classify(code, codeword, received, result),
                  DecodeOutcome::Corrected);
    }
}

TEST_P(EccProperties, DoubleErrorsNeverDecodeToTruth)
{
    // Distance 3: two errors always leave the decoder either partially
    // correcting, miscorrecting, or detecting — never silently right.
    Rng rng(400 + k());
    const LinearCode code = randomSecCode(k(), rng);
    const BitVec data = randomData(k(), rng);
    const BitVec codeword = code.encode(data);
    for (int round = 0; round < 50; ++round) {
        const std::size_t a = (std::size_t)rng.below(code.n());
        std::size_t b = (std::size_t)rng.below(code.n());
        while (b == a)
            b = (std::size_t)rng.below(code.n());
        BitVec received = codeword;
        received.flip(a);
        received.flip(b);
        const auto result = decode(code, received);
        EXPECT_NE(result.codeword, codeword);
    }
}

TEST_P(EccProperties, SyndromeIsLinear)
{
    Rng rng(500 + k());
    const LinearCode code = randomSecCode(k(), rng);
    for (int round = 0; round < 10; ++round) {
        BitVec a(code.n());
        BitVec b(code.n());
        for (std::size_t i = 0; i < code.n(); ++i) {
            a.set(i, rng.bernoulli(0.5));
            b.set(i, rng.bernoulli(0.5));
        }
        EXPECT_EQ(code.syndrome(a) ^ code.syndrome(b),
                  code.syndrome(a ^ b));
    }
}

TEST_P(EccProperties, CanonicalizationPreservesProfiles)
{
    // The BEER-relevant invariant: canonicalization (parity-row
    // sorting) must not change anything externally observable.
    Rng rng(600 + k());
    const LinearCode code = randomSecCode(k(), rng);
    const LinearCode canon = canonicalize(code);
    const auto patterns = beer::chargedPatterns(k(), 1);
    EXPECT_EQ(beer::exhaustiveProfile(code, patterns),
              beer::exhaustiveProfile(canon, patterns));
}

TEST_P(EccProperties, MiscorrectionPredicateConsistentWithDecoder)
{
    // If the predicate says "possible", a concrete error pattern must
    // exist that makes the decoder flip that bit; find one by Monte
    // Carlo over charged-cell subsets.
    Rng rng(700 + k());
    const LinearCode code = randomSecCode(k(), rng);
    const std::size_t charged = (std::size_t)rng.below(k());
    BitVec data(k());
    data.set(charged, true);
    const BitVec codeword = code.encode(data);

    for (std::size_t bit = 0; bit < k(); ++bit) {
        if (bit == charged)
            continue;
        if (!beer::miscorrectionPossible(code, {charged}, bit))
            continue;
        // Constructive witness: supp(col_bit) is a subset of
        // supp(col_charged) (that is what the predicate asserts), and
        // the charged parity cells are exactly supp(col_charged). So
        // decaying the parity cells in supp(col_bit) produces
        // syndrome col_bit, and the decoder must flip `bit`.
        BitVec received = codeword;
        for (std::size_t r : code.hColumn(bit).support()) {
            ASSERT_TRUE(codeword.get(k() + r)); // must be charged
            received.set(k() + r, false);
        }
        const auto result = decode(code, received);
        EXPECT_EQ(result.flippedBit, bit);
    }
}

INSTANTIATE_TEST_SUITE_P(DatawordLengths, EccProperties,
                         ::testing::Values(4, 5, 7, 8, 11, 13, 16, 21,
                                           26, 32, 40, 57, 64, 120,
                                           128),
                         ::testing::PrintToStringParamName());

/** SEC-DED sweeps (rank-level ECC substrate). */
class SecDedProperties : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(SecDedProperties, DistanceFourBehaviour)
{
    const std::size_t k = GetParam();
    Rng rng(800 + k);
    const SecDedCode code = SecDedCode::random(k, rng);
    BitVec data(k);
    for (std::size_t i = 0; i < k; ++i)
        data.set(i, rng.bernoulli(0.5));
    const BitVec codeword = code.encode(data);

    // Singles corrected.
    for (std::size_t pos = 0; pos < code.n(); ++pos) {
        BitVec received = codeword;
        received.flip(pos);
        EXPECT_EQ(code.decode(received).outcome,
                  SecDedOutcome::Corrected);
    }
    // Random doubles detected.
    for (int round = 0; round < 100; ++round) {
        const std::size_t a = (std::size_t)rng.below(code.n());
        std::size_t b = (std::size_t)rng.below(code.n());
        while (b == a)
            b = (std::size_t)rng.below(code.n());
        BitVec received = codeword;
        received.flip(a);
        received.flip(b);
        EXPECT_EQ(code.decode(received).outcome,
                  SecDedOutcome::Detected);
    }
}

INSTANTIATE_TEST_SUITE_P(DatawordLengths, SecDedProperties,
                         ::testing::Values(4, 8, 16, 32, 64),
                         ::testing::PrintToStringParamName());
