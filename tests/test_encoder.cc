/**
 * @file
 * Tests for the Tseitin encoder: each gate is validated against its
 * truth table by enumerating input assignments with assumptions, and
 * the top-level constraints are checked by model counting.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sat/encoder.hh"
#include "sat/solver.hh"

using namespace beer::sat;

namespace
{

/**
 * For every assignment of @p inputs, check that forcing the inputs via
 * assumptions makes the solver agree with @p expected on @p output.
 */
void
checkTruthTable(Solver &solver, const std::vector<Lit> &inputs,
                Lit output,
                const std::function<bool(std::uint32_t)> &expected)
{
    for (std::uint32_t assign = 0;
         assign < (1u << inputs.size()); ++assign) {
        std::vector<Lit> assumptions;
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            const bool value = (assign >> i) & 1;
            assumptions.push_back(value ? inputs[i] : ~inputs[i]);
        }
        // Forcing the expected output value must be satisfiable...
        auto with_output = assumptions;
        with_output.push_back(expected(assign) ? output : ~output);
        EXPECT_EQ(solver.solve(with_output), SolveResult::Sat)
            << "assign " << assign;
        // ...and the opposite must not be.
        auto with_wrong = assumptions;
        with_wrong.push_back(expected(assign) ? ~output : output);
        EXPECT_EQ(solver.solve(with_wrong), SolveResult::Unsat)
            << "assign " << assign;
    }
}

std::vector<Lit>
freshInputs(Encoder &enc, std::size_t count)
{
    std::vector<Lit> out;
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(enc.fresh());
    return out;
}

} // anonymous namespace

TEST(Encoder, ConstantsHold)
{
    Solver solver;
    Encoder enc(solver);
    ASSERT_EQ(solver.solve(), SolveResult::Sat);
    EXPECT_TRUE(solver.modelValue(enc.constTrue().var()));
    EXPECT_EQ(solver.solve({enc.constFalse()}), SolveResult::Unsat);
}

TEST(Encoder, AndGate)
{
    Solver solver;
    Encoder enc(solver);
    const auto in = freshInputs(enc, 2);
    const Lit y = enc.mkAnd(in[0], in[1]);
    checkTruthTable(solver, in, y, [](std::uint32_t a) {
        return (a & 3) == 3;
    });
}

TEST(Encoder, AndGateNary)
{
    Solver solver;
    Encoder enc(solver);
    const auto in = freshInputs(enc, 4);
    const Lit y = enc.mkAnd(in);
    checkTruthTable(solver, in, y, [](std::uint32_t a) {
        return (a & 0xF) == 0xF;
    });
}

TEST(Encoder, OrGateNary)
{
    Solver solver;
    Encoder enc(solver);
    const auto in = freshInputs(enc, 3);
    const Lit y = enc.mkOr(in);
    checkTruthTable(solver, in, y, [](std::uint32_t a) {
        return (a & 7) != 0;
    });
}

TEST(Encoder, XorGate)
{
    Solver solver;
    Encoder enc(solver);
    const auto in = freshInputs(enc, 2);
    const Lit y = enc.mkXor(in[0], in[1]);
    checkTruthTable(solver, in, y, [](std::uint32_t a) {
        return ((a >> 0) & 1) != ((a >> 1) & 1);
    });
}

TEST(Encoder, XorGateNary)
{
    Solver solver;
    Encoder enc(solver);
    const auto in = freshInputs(enc, 5);
    const Lit y = enc.mkXor(in);
    checkTruthTable(solver, in, y, [](std::uint32_t a) {
        return __builtin_popcount(a & 0x1F) % 2 == 1;
    });
}

TEST(Encoder, EqAndIte)
{
    Solver solver;
    Encoder enc(solver);
    const auto in = freshInputs(enc, 3);
    const Lit eq = enc.mkEq(in[0], in[1]);
    checkTruthTable(solver, {in[0], in[1]}, eq, [](std::uint32_t a) {
        return ((a >> 0) & 1) == ((a >> 1) & 1);
    });
    const Lit ite = enc.mkIte(in[0], in[1], in[2]);
    checkTruthTable(solver, in, ite, [](std::uint32_t a) {
        const bool c = a & 1;
        const bool t = (a >> 1) & 1;
        const bool f = (a >> 2) & 1;
        return c ? t : f;
    });
}

TEST(Encoder, ConstantFolding)
{
    Solver solver;
    Encoder enc(solver);
    const Lit a = enc.fresh();
    EXPECT_EQ(enc.mkAnd(a, enc.constTrue()), a);
    EXPECT_EQ(enc.mkAnd(a, enc.constFalse()), enc.constFalse());
    EXPECT_EQ(enc.mkAnd(a, a), a);
    EXPECT_EQ(enc.mkAnd(a, ~a), enc.constFalse());
    EXPECT_EQ(enc.mkXor(a, enc.constFalse()), a);
    EXPECT_EQ(enc.mkXor(a, enc.constTrue()), ~a);
    EXPECT_EQ(enc.mkXor(a, a), enc.constFalse());
    EXPECT_EQ(enc.mkOr(std::vector<Lit>{}), enc.constFalse());
    EXPECT_EQ(enc.mkAnd(std::vector<Lit>{}), enc.constTrue());
}

TEST(Encoder, StructuralHashingSharesXorGates)
{
    Solver solver;
    Encoder enc(solver);
    const Lit a = enc.fresh();
    const Lit b = enc.fresh();

    const Lit y = enc.mkXor(a, b);
    const std::size_t aux = enc.numAuxVars();

    // Same gate re-requested in every commutation/negation variant:
    // no new auxiliary variable, just the (possibly negated) output.
    EXPECT_EQ(enc.mkXor(a, b), y);
    EXPECT_EQ(enc.mkXor(b, a), y);
    EXPECT_EQ(enc.mkXor(~a, b), ~y);
    EXPECT_EQ(enc.mkXor(a, ~b), ~y);
    EXPECT_EQ(enc.mkXor(~a, ~b), y);
    EXPECT_EQ(enc.mkXor(~b, ~a), y);
    EXPECT_EQ(enc.numAuxVars(), aux);
    EXPECT_GE(enc.numGateCacheHits(), 6u);

    // The shared negated form still has XOR semantics.
    checkTruthTable(solver, {a, b}, enc.mkXor(~a, b),
                    [](std::uint32_t assign) {
                        return (((assign >> 0) & 1) ^ 1) !=
                               ((assign >> 1) & 1);
                    });
}

TEST(Encoder, StructuralHashingSharesAndGates)
{
    Solver solver;
    Encoder enc(solver);
    const Lit a = enc.fresh();
    const Lit b = enc.fresh();

    const Lit y = enc.mkAnd(a, b);
    const std::size_t aux = enc.numAuxVars();
    EXPECT_EQ(enc.mkAnd(a, b), y);
    EXPECT_EQ(enc.mkAnd(b, a), y);
    EXPECT_EQ(enc.numAuxVars(), aux);

    // AND is not symmetric under negation: distinct gates required.
    const Lit z = enc.mkAnd(~a, b);
    EXPECT_NE(z, y);
    EXPECT_NE(z, ~y);
    EXPECT_GT(enc.numAuxVars(), aux);

    // De Morgan routing through mkAnd means mkOr shares too.
    const Lit o = enc.mkOr(~a, ~b);
    EXPECT_EQ(o, ~y);
}

TEST(Encoder, NaryXorChainsShareAcrossCalls)
{
    // Re-encoding the same XOR column (as an incremental re-solve
    // would) must not duplicate any gate.
    Solver solver;
    Encoder enc(solver);
    const auto in = freshInputs(enc, 6);
    const Lit first = enc.mkXor(in);
    const std::size_t aux = enc.numAuxVars();
    const Lit second = enc.mkXor(in);
    EXPECT_EQ(first, second);
    EXPECT_EQ(enc.numAuxVars(), aux);
}

TEST(Encoder, RequireXorParity)
{
    Solver solver;
    Encoder enc(solver);
    const auto in = freshInputs(enc, 4);
    enc.requireXor(in, true);
    // Count models over the 4 inputs: those with odd parity = 8.
    std::size_t models = 0;
    while (solver.solve() == SolveResult::Sat) {
        int parity = 0;
        std::vector<Lit> blocking;
        for (Lit l : in) {
            parity ^= solver.modelValue(l.var());
            blocking.push_back(solver.modelValue(l.var()) ? ~l : l);
        }
        EXPECT_EQ(parity, 1);
        ++models;
        ASSERT_LE(models, 8u);
        solver.addClause(blocking);
    }
    EXPECT_EQ(models, 8u);
}

TEST(Encoder, AtMostOneAndExactlyOne)
{
    {
        Solver solver;
        Encoder enc(solver);
        const auto in = freshInputs(enc, 4);
        enc.requireAtMostOne(in);
        std::size_t models = 0;
        while (solver.solve() == SolveResult::Sat) {
            int set = 0;
            std::vector<Lit> blocking;
            for (Lit l : in) {
                set += solver.modelValue(l.var());
                blocking.push_back(solver.modelValue(l.var()) ? ~l : l);
            }
            EXPECT_LE(set, 1);
            ++models;
            ASSERT_LE(models, 5u);
            solver.addClause(blocking);
        }
        EXPECT_EQ(models, 5u); // empty + 4 singletons
    }
    {
        Solver solver;
        Encoder enc(solver);
        const auto in = freshInputs(enc, 4);
        enc.requireExactlyOne(in);
        std::size_t models = 0;
        while (solver.solve() == SolveResult::Sat) {
            std::vector<Lit> blocking;
            for (Lit l : in)
                blocking.push_back(solver.modelValue(l.var()) ? ~l : l);
            ++models;
            ASSERT_LE(models, 4u);
            solver.addClause(blocking);
        }
        EXPECT_EQ(models, 4u);
    }
}

TEST(Encoder, LexLeqEnumeratesOrderedPairs)
{
    // Two 3-bit vectors a <=_lex b: count assignments.
    Solver solver;
    Encoder enc(solver);
    const auto a = freshInputs(enc, 3);
    const auto b = freshInputs(enc, 3);
    enc.requireLexLeq(a, b);

    std::size_t models = 0;
    while (solver.solve() == SolveResult::Sat) {
        std::uint32_t av = 0;
        std::uint32_t bv = 0;
        std::vector<Lit> blocking;
        for (std::size_t i = 0; i < 3; ++i) {
            // Element 0 is most significant.
            av = (av << 1) | (std::uint32_t)solver.modelValue(a[i].var());
            bv = (bv << 1) | (std::uint32_t)solver.modelValue(b[i].var());
        }
        for (Lit l : a)
            blocking.push_back(solver.modelValue(l.var()) ? ~l : l);
        for (Lit l : b)
            blocking.push_back(solver.modelValue(l.var()) ? ~l : l);
        EXPECT_LE(av, bv);
        ++models;
        ASSERT_LE(models, 64u);
        solver.addClause(blocking);
    }
    // Number of ordered pairs (a <= b) over 8 values: 8*9/2 = 36.
    EXPECT_EQ(models, 36u);
}

TEST(Encoder, ImpliesAndEqualConstraints)
{
    Solver solver;
    Encoder enc(solver);
    const Lit a = enc.fresh();
    const Lit b = enc.fresh();
    const Lit c = enc.fresh();
    enc.requireImplies(a, b);
    enc.requireEqual(b, c);
    EXPECT_EQ(solver.solve({a, ~c}), SolveResult::Unsat);
    EXPECT_EQ(solver.solve({a, c}), SolveResult::Sat);
    EXPECT_EQ(solver.solve({~a, ~c}), SolveResult::Sat);
}
