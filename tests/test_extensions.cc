/**
 * @file
 * Tests for the extension features: parity-count inference (recovery
 * with zero prerequisite knowledge), stuck-at fault profiling
 * (Section 7.1.5), VRT noise robustness (Section 5.2), and SAT/GF(2)
 * cross-validation of linear-system solving.
 */

#include <gtest/gtest.h>

#include "beep/beep.hh"
#include "beer/measure.hh"
#include "beer/profile.hh"
#include "beer/solver.hh"
#include "dram/chip.hh"
#include "ecc/code_equiv.hh"
#include "ecc/hamming.hh"
#include "gf2/matrix.hh"
#include "sat/encoder.hh"
#include "util/rng.hh"

using namespace beer;
using beer::ecc::LinearCode;
using beer::ecc::randomSecCode;
using beer::gf2::BitVec;
using beer::gf2::Matrix;
using beer::util::Rng;

// ---- parity-count inference -----------------------------------------

TEST(ParityInference, FindsMinimumParityCount)
{
    Rng rng(3);
    for (std::size_t k : {4u, 8u, 11u, 16u}) {
        const LinearCode code = randomSecCode(k, rng);
        const auto profile =
            exhaustiveProfile(code, chargedPatternUnion(k, {1, 2}));
        const auto inferred = inferEccFunction(profile);
        EXPECT_EQ(inferred.parityBits,
                  ecc::parityBitsForDataBits(k))
            << "k=" << k;
        ASSERT_FALSE(inferred.result.solutions.empty());
        EXPECT_TRUE(ecc::equivalent(inferred.result.solutions[0], code));
    }
}

TEST(ParityInference, LargerParityAlsoAdmitsSolutions)
{
    // The monotonicity property the inference relies on: a profile
    // consistent at p parity bits is consistent at p+1 as well.
    Rng rng(5);
    const LinearCode code = randomSecCode(8, rng);
    const auto profile =
        exhaustiveProfile(code, chargedPatterns(8, 1));
    const auto at_min = solveForEccFunction(
        profile, ecc::parityBitsForDataBits(8));
    const auto at_plus_one = solveForEccFunction(
        profile, ecc::parityBitsForDataBits(8) + 1);
    EXPECT_FALSE(at_min.solutions.empty());
    EXPECT_FALSE(at_plus_one.solutions.empty());
}

// ---- stuck-at faults (Section 7.1.5) ---------------------------------

TEST(StuckAtFaults, IndistinguishableFromCertainRetention)
{
    // The paper: "data-retention errors and stuck-at-DISCHARGED
    // errors" are "nearly indistinguishable". With the same seeds,
    // BEEP must produce identical results for the two fault models.
    Rng rng(7);
    const LinearCode code = randomSecCode(26, rng);
    const std::vector<std::size_t> cells = {3, 14, 28};

    beep::BeepConfig config;
    config.passes = 2;
    config.readsPerPattern = 4;
    config.seed = 11;

    beep::SimulatedWord retention(code, cells, 1.0, 13,
                                  beep::FaultModel::Retention);
    beep::SimulatedWord stuck(code, cells, 0.0, 13,
                              beep::FaultModel::StuckAtDischarged);

    beep::Profiler profiler_a(code, config);
    beep::Profiler profiler_b(code, config);
    const auto result_a = profiler_a.profile(retention);
    const auto result_b = profiler_b.profile(stuck);
    EXPECT_EQ(result_a.errorCells, result_b.errorCells);
    EXPECT_EQ(result_a.errorCells, cells);
}

// ---- VRT noise (Section 5.2) ------------------------------------------

TEST(Vrt, BreaksExactRepeatabilityButNotRecovery)
{
    using dram::Chip;
    using dram::ChipConfig;

    ChipConfig config = dram::makeVendorConfig('A', 8, 21);
    config.map.rows = 64;
    config.vrtRate = 0.01;
    Chip chip(config);

    // Two identical pauses no longer produce identical stored data in
    // the per-cell model (VRT cells re-draw their retention time).
    const BitVec ones = BitVec::ones(chip.datawordBits());
    auto run = [&] {
        std::vector<BitVec> stored;
        for (std::size_t w = 0; w < chip.numWords(); ++w)
            chip.writeDataword(w, ones);
        chip.pauseRefresh(36000.0, 80.0);
        for (std::size_t w = 0; w < chip.numWords(); ++w)
            stored.push_back(chip.storedCodeword(w));
        return stored;
    };
    EXPECT_NE(run(), run());
}

TEST(Vrt, ProfileMeasurementSurvivesVrtNoise)
{
    using dram::Chip;
    using dram::ChipConfig;

    ChipConfig config = dram::makeVendorConfig('A', 8, 23);
    config.map.rows = 64;
    config.iidErrors = true; // iid sampling plus VRT-style noise on top
    config.transientErrorRate = 5e-5;
    Chip chip(config);

    MeasureConfig mc;
    for (double ber : {0.1, 0.2, 0.3})
        mc.pausesSeconds.push_back(
            chip.retentionModel().pauseForBitErrorRate(ber, 80.0));
    mc.repeatsPerPause = 30;

    const auto patterns = chargedPatterns(8, 1);
    const auto counts = measureProfileOnChip(chip, patterns, mc);
    EXPECT_EQ(counts.threshold(5e-3),
              exhaustiveProfile(chip.groundTruthCode(), patterns));
}

// ---- SAT vs GF(2) cross-validation -------------------------------------

TEST(SatGf2, XorSystemsAgreeWithMatrixSolver)
{
    // Random GF(2) linear systems: the SAT encoder's XOR constraints
    // and the dense matrix solver must agree on satisfiability, and
    // SAT models must satisfy the system.
    Rng rng(31);
    int sat_count = 0;
    int unsat_count = 0;
    for (int round = 0; round < 60; ++round) {
        const std::size_t rows = 4 + rng.below(6);
        const std::size_t cols = 3 + rng.below(6);
        const Matrix m = Matrix::random(rows, cols, rng);
        BitVec rhs(rows);
        for (std::size_t r = 0; r < rows; ++r)
            rhs.set(r, rng.bernoulli(0.5));

        sat::Solver solver;
        sat::Encoder enc(solver);
        std::vector<sat::Lit> x;
        for (std::size_t c = 0; c < cols; ++c)
            x.push_back(enc.fresh());
        for (std::size_t r = 0; r < rows; ++r) {
            std::vector<sat::Lit> terms;
            for (std::size_t c = 0; c < cols; ++c)
                if (m.get(r, c))
                    terms.push_back(x[c]);
            enc.requireXor(terms, rhs.get(r));
        }

        const auto matrix_solution = m.solve(rhs);
        const auto sat_result = solver.solve();
        EXPECT_EQ(sat_result == sat::SolveResult::Sat,
                  matrix_solution.has_value())
            << "round " << round;
        if (sat_result == sat::SolveResult::Sat) {
            ++sat_count;
            BitVec model(cols);
            for (std::size_t c = 0; c < cols; ++c)
                model.set(c, solver.modelValue(x[c].var()));
            EXPECT_EQ(m.mulVec(model), rhs);
        } else {
            ++unsat_count;
        }
    }
    EXPECT_GT(sat_count, 5);
    EXPECT_GT(unsat_count, 5);
}
