/**
 * @file
 * Tests for SEC Hamming code construction across dataword lengths,
 * including the full-length/shortened distinction central to BEER's
 * Figure 5.
 */

#include <gtest/gtest.h>

#include <set>

#include "ecc/hamming.hh"
#include "util/rng.hh"

using namespace beer::ecc;
using beer::util::Rng;

TEST(Hamming, ParityBitCounts)
{
    // Known SEC Hamming parameters: k -> p.
    EXPECT_EQ(parityBitsForDataBits(1), 2u);
    EXPECT_EQ(parityBitsForDataBits(4), 3u);
    EXPECT_EQ(parityBitsForDataBits(11), 4u);
    EXPECT_EQ(parityBitsForDataBits(26), 5u);
    EXPECT_EQ(parityBitsForDataBits(32), 6u);
    EXPECT_EQ(parityBitsForDataBits(57), 6u);
    EXPECT_EQ(parityBitsForDataBits(64), 7u);
    EXPECT_EQ(parityBitsForDataBits(120), 7u);
    EXPECT_EQ(parityBitsForDataBits(128), 8u);
    EXPECT_EQ(parityBitsForDataBits(247), 8u);
}

TEST(Hamming, FullLengthDetection)
{
    // The paper's full-length dataword lengths: 4, 11, 26, 57, 120, 247.
    for (std::size_t k : {4u, 11u, 26u, 57u, 120u, 247u})
        EXPECT_TRUE(isFullLengthDatawordLength(k)) << k;
    for (std::size_t k : {5u, 10u, 16u, 32u, 64u, 128u})
        EXPECT_FALSE(isFullLengthDatawordLength(k)) << k;
}

TEST(Hamming, RandomCodesAreValidSec)
{
    Rng rng(7);
    for (std::size_t k : {4u, 5u, 8u, 16u, 26u, 32u, 57u, 64u, 128u}) {
        for (int round = 0; round < 5; ++round) {
            const LinearCode code = randomSecCode(k, rng);
            EXPECT_EQ(code.k(), k);
            EXPECT_EQ(code.numParityBits(), parityBitsForDataBits(k));
            EXPECT_TRUE(code.isValidSec()) << "k=" << k;
        }
    }
}

TEST(Hamming, CanonicalCodeDeterministicAndValid)
{
    for (std::size_t k : {4u, 11u, 16u, 32u, 64u}) {
        const LinearCode a = canonicalSecCode(k);
        const LinearCode b = canonicalSecCode(k);
        EXPECT_EQ(a, b);
        EXPECT_TRUE(a.isValidSec());
    }
}

TEST(Hamming, RandomCodesDiffer)
{
    Rng rng(11);
    const LinearCode a = randomSecCode(32, rng);
    const LinearCode b = randomSecCode(32, rng);
    EXPECT_FALSE(a == b); // astronomically unlikely to collide
}

TEST(Hamming, RandomCodeCorrectsAllSingleErrors)
{
    Rng rng(13);
    for (std::size_t k : {8u, 21u, 40u}) {
        const LinearCode code = randomSecCode(k, rng);
        beer::gf2::BitVec data(k);
        for (std::size_t i = 0; i < k; ++i)
            data.set(i, rng.bernoulli(0.5));
        const auto codeword = code.encode(data);
        for (std::size_t pos = 0; pos < code.n(); ++pos) {
            auto corrupted = codeword;
            corrupted.flip(pos);
            EXPECT_EQ(code.findColumn(code.syndrome(corrupted)), pos);
        }
    }
}

TEST(Hamming, FullLengthCodeUsesEverySyndrome)
{
    Rng rng(17);
    const LinearCode code = randomSecCode(11, rng); // (15, 11) full
    ASSERT_TRUE(code.isFullLength());
    std::set<std::size_t> used;
    for (std::size_t c = 0; c < code.n(); ++c)
        used.insert(syndromeIndex(code.hColumn(c)));
    EXPECT_EQ(used.size(), 15u); // all nonzero 4-bit syndromes
}

TEST(Hamming, DesignSpaceSampling)
{
    // For k=4, p=3 there are C(4,4)*4! = 24 ordered column choices
    // (weight>=2 columns: 011,101,110,111). Sampling should hit many
    // distinct codes.
    Rng rng(19);
    std::set<std::string> seen;
    for (int round = 0; round < 300; ++round)
        seen.insert(randomSecCode(4, rng).pMatrix().toString());
    EXPECT_EQ(seen.size(), 24u);
}
