/**
 * @file
 * Equivalence tests for beer::IncrementalSolver: feeding a profile
 * round by round into one persistent context must yield the same
 * solutions and the same uniqueness verdicts as re-running the
 * from-scratch solveForEccFunction() on each prefix — including
 * across the 2-CHARGED escalation and across retraction of blocking
 * clauses added by earlier uniqueness checks.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "beer/profile.hh"
#include "beer/solver.hh"
#include "ecc/code_equiv.hh"
#include "ecc/hamming.hh"
#include "util/rng.hh"

using namespace beer;
using beer::ecc::LinearCode;
using beer::ecc::equivalent;
using beer::ecc::randomSecCode;
using beer::util::Rng;

namespace
{

std::vector<std::string>
canonicalKeys(const BeerSolveResult &result)
{
    std::vector<std::string> out;
    out.reserve(result.solutions.size());
    for (const auto &solution : result.solutions)
        out.push_back(solution.pMatrix().toString());
    std::sort(out.begin(), out.end());
    return out;
}

/** Profile containing the first @p count entries of @p full. */
MiscorrectionProfile
prefixProfile(const MiscorrectionProfile &full, std::size_t count)
{
    MiscorrectionProfile out;
    out.k = full.k;
    out.patterns.assign(full.patterns.begin(),
                        full.patterns.begin() + (std::ptrdiff_t)count);
    return out;
}

/**
 * The round-by-round measurement plan the equivalence sweep feeds:
 * 1-CHARGED patterns, then (escalation) a slice of the 2-CHARGED
 * class, chunked into @p chunk-pattern rounds.
 */
MiscorrectionProfile
planProfile(const LinearCode &code, std::size_t two_charged_limit)
{
    auto patterns = chargedPatterns(code.k(), 1);
    auto two = chargedPatterns(code.k(), 2);
    if (two.size() > two_charged_limit)
        two.resize(two_charged_limit);
    patterns.insert(patterns.end(), two.begin(), two.end());
    return exhaustiveProfile(code, patterns);
}

} // anonymous namespace

TEST(IncrementalSolver, MatchesFromScratchUncappedAtSmallK)
{
    // k=4 keeps every intermediate enumeration tiny, so each round can
    // compare the COMPLETE solution sets, not just verdicts.
    Rng rng(61);
    for (int seed = 0; seed < 4; ++seed) {
        const LinearCode code = randomSecCode(4, rng);
        const MiscorrectionProfile full = planProfile(code, 6);

        IncrementalSolver incremental(4, code.numParityBits());
        for (std::size_t n = 1; n <= full.patterns.size(); ++n) {
            const MiscorrectionProfile prefix = prefixProfile(full, n);
            incremental.addProfile(prefix);
            const BeerSolveResult inc = incremental.solve();
            const BeerSolveResult scratch =
                solveForEccFunction(prefix, code.numParityBits());

            ASSERT_TRUE(inc.complete && scratch.complete)
                << "seed " << seed << " round " << n;
            EXPECT_EQ(canonicalKeys(inc), canonicalKeys(scratch))
                << "seed " << seed << " round " << n;
        }
        EXPECT_EQ(incremental.rebuilds(), 0u);
    }
}

/** Parameterized sweep (the acceptance-criteria dataword lengths). */
class IncrementalEquivalence
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(IncrementalEquivalence, RoundVerdictsAndFinalSetMatchScratch)
{
    const std::size_t k = GetParam();
    Rng rng(4000 + k);

    for (int seed = 0; seed < 2; ++seed) {
        const LinearCode code = randomSecCode(k, rng);
        // 1-CHARGED rounds plus a 2-CHARGED escalation slice, chunked
        // like an adaptive session would measure them.
        const MiscorrectionProfile full = planProfile(code, 2 * k);
        const std::size_t chunk = std::max<std::size_t>(1, k / 2);

        BeerSolverConfig capped;
        capped.maxSolutions = 2; // uniqueness check, as Session does

        IncrementalSolver incremental(k, code.numParityBits(), capped);
        for (std::size_t n = chunk; n < full.patterns.size();
             n += chunk) {
            const MiscorrectionProfile prefix =
                prefixProfile(full, std::min(n, full.patterns.size()));
            incremental.addProfile(prefix);
            const BeerSolveResult inc = incremental.solve();
            const BeerSolveResult scratch = solveForEccFunction(
                prefix, code.numParityBits(), capped);

            // Capped enumerations may surface different witnesses, but
            // the uniqueness verdict (complete? how many?) must agree,
            // and every witness must be consistent with the evidence.
            EXPECT_EQ(inc.complete, scratch.complete)
                << "k=" << k << " n=" << n;
            EXPECT_EQ(inc.solutions.size(), scratch.solutions.size())
                << "k=" << k << " n=" << n;
            EXPECT_EQ(inc.unique(), scratch.unique())
                << "k=" << k << " n=" << n;
            std::vector<TestPattern> measured;
            for (const auto &entry : prefix.patterns)
                measured.push_back(entry.pattern);
            for (const auto &solution : inc.solutions)
                EXPECT_EQ(exhaustiveProfile(solution, measured), prefix)
                    << "k=" << k << " n=" << n;
        }

        // Final round: full evidence, uncapped — the solution sets
        // must be identical and contain the planted code, even though
        // earlier rounds blocked (then retracted) candidate models.
        incremental.setMaxSolutions(0);
        incremental.addProfile(full);
        const BeerSolveResult inc = incremental.solve();
        const BeerSolveResult scratch =
            solveForEccFunction(full, code.numParityBits());
        ASSERT_TRUE(inc.complete && scratch.complete) << "k=" << k;
        EXPECT_EQ(canonicalKeys(inc), canonicalKeys(scratch))
            << "k=" << k;
        bool planted_found = false;
        for (const auto &solution : inc.solutions)
            planted_found |= equivalent(solution, code);
        EXPECT_TRUE(planted_found) << "k=" << k;
        EXPECT_EQ(incremental.rebuilds(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(DatawordLengths, IncrementalEquivalence,
                         ::testing::Values(4, 8, 16, 32),
                         ::testing::PrintToStringParamName());

TEST(IncrementalSolver, RetractedBlockingClausesReappear)
{
    // Round 1 enumerates (and blocks) EVERY candidate; round 2 adds
    // evidence. If retraction were broken, the final enumeration
    // could not re-find the planted code it blocked in round 1.
    Rng rng(71);
    const LinearCode code = randomSecCode(4, rng);
    const MiscorrectionProfile full =
        exhaustiveProfile(code, chargedPatterns(4, 1));

    IncrementalSolver incremental(4, code.numParityBits());
    incremental.addProfile(prefixProfile(full, 1));
    const BeerSolveResult first = incremental.solve();
    ASSERT_TRUE(first.complete);
    ASSERT_GE(first.solutions.size(), 1u);

    // Re-solving the same evidence reproduces the same set: blocking
    // clauses from the previous call must not leak in.
    const BeerSolveResult again = incremental.solve();
    EXPECT_EQ(canonicalKeys(first), canonicalKeys(again));

    incremental.addProfile(full);
    const BeerSolveResult final_result = incremental.solve();
    const BeerSolveResult scratch =
        solveForEccFunction(full, code.numParityBits());
    EXPECT_EQ(canonicalKeys(final_result), canonicalKeys(scratch));
    bool planted_found = false;
    for (const auto &solution : final_result.solutions)
        planted_found |= equivalent(solution, code);
    EXPECT_TRUE(planted_found);
}

TEST(IncrementalSolver, NonMonotoneEntryForcesRebuild)
{
    // Flip one observation bit of an already-encoded pattern: the
    // context must rebuild (permanent constraints cannot be retracted)
    // and then agree with a from-scratch solve of the modified profile.
    Rng rng(73);
    const LinearCode code = randomSecCode(8, rng);
    MiscorrectionProfile profile =
        exhaustiveProfile(code, chargedPatterns(8, 1));

    IncrementalSolver incremental(8, code.numParityBits());
    incremental.addProfile(profile);
    (void)incremental.solve();
    EXPECT_EQ(incremental.rebuilds(), 0u);

    // Mutate entry 0 at some discharged bit.
    const std::size_t charged = profile.patterns[0].pattern[0];
    const std::size_t bit = charged == 0 ? 1 : 0;
    profile.patterns[0].miscorrectable.set(
        bit, !profile.patterns[0].miscorrectable.get(bit));

    incremental.addProfile(profile);
    EXPECT_EQ(incremental.rebuilds(), 1u);
    const BeerSolveResult inc = incremental.solve();
    const BeerSolveResult scratch =
        solveForEccFunction(profile, code.numParityBits());
    EXPECT_EQ(inc.complete, scratch.complete);
    EXPECT_EQ(canonicalKeys(inc), canonicalKeys(scratch));
}

TEST(IncrementalSolver, WithoutSymmetryBreakingMatchesScratch)
{
    // Without symmetry breaking the solver enumerates raw models (p!
    // per equivalence class), so intermediate weakly-constrained
    // rounds run capped; the full profile compares complete sets.
    Rng rng(79);
    const LinearCode code = randomSecCode(6, rng);
    const MiscorrectionProfile full =
        exhaustiveProfile(code, chargedPatterns(6, 1));
    BeerSolverConfig config;
    config.symmetryBreaking = false;
    config.maxSolutions = 2;

    IncrementalSolver incremental(6, code.numParityBits(), config);
    for (std::size_t n = 2; n < full.patterns.size(); n += 2) {
        const MiscorrectionProfile prefix = prefixProfile(full, n);
        incremental.addProfile(prefix);
        const BeerSolveResult inc = incremental.solve();
        const BeerSolveResult scratch = solveForEccFunction(
            prefix, code.numParityBits(), config);
        EXPECT_EQ(inc.complete, scratch.complete) << "n=" << n;
        EXPECT_EQ(inc.unique(), scratch.unique()) << "n=" << n;
    }

    incremental.setMaxSolutions(0);
    incremental.addProfile(full);
    const BeerSolveResult inc = incremental.solve();
    BeerSolverConfig uncapped = config;
    uncapped.maxSolutions = 0;
    const BeerSolveResult scratch =
        solveForEccFunction(full, code.numParityBits(), uncapped);
    ASSERT_TRUE(inc.complete && scratch.complete);
    EXPECT_EQ(canonicalKeys(inc), canonicalKeys(scratch));
}

TEST(IncrementalSolver, StatsAreDeltasPerRound)
{
    Rng rng(83);
    const LinearCode code = randomSecCode(8, rng);
    const MiscorrectionProfile full =
        exhaustiveProfile(code, chargedPatterns(8, 1));

    IncrementalSolver incremental(8, code.numParityBits());
    incremental.addProfile(prefixProfile(full, 4));
    const BeerSolveResult first = incremental.solve();
    incremental.addProfile(full);
    const BeerSolveResult second = incremental.solve();

    // Per-round deltas must sum to no more than the cumulative totals.
    const auto &cumulative = incremental.satSolver().stats();
    EXPECT_LE(first.stats.propagations + second.stats.propagations,
              cumulative.propagations);
    EXPECT_GT(first.stats.propagations, 0u);
    EXPECT_GT(cumulative.addedClauses, 0u);
    EXPECT_EQ(incremental.encodedPatterns(), full.patterns.size());
}
