/**
 * @file
 * Tests for the DRAM address map (byte-interleaved ECC words, paper
 * Section 5.1.2) and the true-/anti-cell row tiling (Section 5.1.1).
 */

#include <gtest/gtest.h>

#include "dram/layout.hh"

using namespace beer::dram;

namespace
{

AddressMap
paperMap()
{
    // 32B regions holding two byte-interleaved 16B datawords.
    AddressMap map;
    map.bytesPerWord = 16;
    map.wordsPerRegion = 2;
    map.bytesPerRow = 64;
    map.rows = 8;
    return map;
}

} // anonymous namespace

TEST(AddressMap, Geometry)
{
    const AddressMap map = paperMap();
    EXPECT_EQ(map.bytesPerRegion(), 32u);
    EXPECT_EQ(map.regionsPerRow(), 2u);
    EXPECT_EQ(map.wordsPerRow(), 4u);
    EXPECT_EQ(map.numWords(), 32u);
    EXPECT_EQ(map.numBytes(), 512u);
    map.validate();
}

TEST(AddressMap, ByteInterleavingMatchesPaper)
{
    // Within a 32B region, even byte addresses belong to word 0 and
    // odd ones to word 1, in order.
    const AddressMap map = paperMap();
    for (std::size_t offset = 0; offset < 32; ++offset) {
        const auto slot = map.slotOfByte(offset);
        EXPECT_EQ(slot.wordIndex, offset % 2);
        EXPECT_EQ(slot.byteInWord, offset / 2);
    }
    // Second region maps to words 2 and 3.
    EXPECT_EQ(map.slotOfByte(32).wordIndex, 2u);
    EXPECT_EQ(map.slotOfByte(33).wordIndex, 3u);
}

TEST(AddressMap, SlotRoundTrip)
{
    const AddressMap map = paperMap();
    for (std::size_t addr = 0; addr < map.numBytes(); ++addr) {
        const auto slot = map.slotOfByte(addr);
        EXPECT_EQ(map.byteOfSlot(slot.wordIndex, slot.byteInWord), addr);
    }
}

TEST(AddressMap, WordsNeverStraddleRows)
{
    const AddressMap map = paperMap();
    for (std::size_t w = 0; w < map.numWords(); ++w) {
        const std::size_t row = map.rowOfWord(w);
        for (std::size_t b = 0; b < map.bytesPerWord; ++b) {
            const std::size_t addr = map.byteOfSlot(w, b);
            EXPECT_EQ(addr / map.bytesPerRow, row);
        }
    }
}

TEST(CellTypeLayout, AllTrueDefault)
{
    const CellTypeLayout layout = CellTypeLayout::allTrue();
    for (std::size_t row = 0; row < 100; ++row)
        EXPECT_EQ(layout.typeOfRow(row), CellType::True);
}

TEST(CellTypeLayout, AlternatingBlocks)
{
    // 2 true rows, 3 anti rows, cyclic.
    const CellTypeLayout layout = CellTypeLayout::alternating({2, 3});
    const CellType expected[] = {CellType::True, CellType::True,
                                 CellType::Anti, CellType::Anti,
                                 CellType::Anti};
    for (std::size_t row = 0; row < 50; ++row)
        EXPECT_EQ(layout.typeOfRow(row), expected[row % 5]) << row;
}

TEST(CellTypeLayout, IrregularBlocksLikeVendorC)
{
    // The paper observed irregular block heights (800/824/1224 rows);
    // check an irregular 4-block cycle: T8 A8 T12 A12.
    const CellTypeLayout layout =
        CellTypeLayout::alternating({8, 8, 12, 12});
    std::size_t true_rows = 0;
    for (std::size_t row = 0; row < 40; ++row)
        true_rows += layout.typeOfRow(row) == CellType::True;
    EXPECT_EQ(true_rows, 20u); // 50/50 split per cycle
    EXPECT_EQ(layout.typeOfRow(0), CellType::True);
    EXPECT_EQ(layout.typeOfRow(8), CellType::Anti);
    EXPECT_EQ(layout.typeOfRow(16), CellType::True);
    EXPECT_EQ(layout.typeOfRow(28), CellType::Anti);
}

TEST(ChargeHelpers, TrueAndAntiEncodings)
{
    using namespace beer::dram;
    EXPECT_EQ(chargeOf(true, CellType::True), ChargeState::Charged);
    EXPECT_EQ(chargeOf(false, CellType::True), ChargeState::Discharged);
    EXPECT_EQ(chargeOf(true, CellType::Anti), ChargeState::Discharged);
    EXPECT_EQ(chargeOf(false, CellType::Anti), ChargeState::Charged);

    EXPECT_TRUE(valueFor(ChargeState::Charged, CellType::True));
    EXPECT_FALSE(valueFor(ChargeState::Charged, CellType::Anti));
    EXPECT_FALSE(decayedValue(CellType::True));
    EXPECT_TRUE(decayedValue(CellType::Anti));
}
