/**
 * @file
 * Tests for ecc::LinearCode using the paper's (7,4,3) running example
 * (Equation 1) plus random-code properties.
 */

#include <gtest/gtest.h>

#include "ecc/hamming.hh"
#include "ecc/linear_code.hh"
#include "util/rng.hh"

using namespace beer::ecc;
using beer::gf2::BitVec;
using beer::gf2::Matrix;
using beer::util::Rng;

TEST(LinearCode, PaperExampleShape)
{
    const LinearCode code = paperExampleCode();
    EXPECT_EQ(code.k(), 4u);
    EXPECT_EQ(code.n(), 7u);
    EXPECT_EQ(code.numParityBits(), 3u);
    EXPECT_TRUE(code.isValidSec());
    EXPECT_TRUE(code.isFullLength());
}

TEST(LinearCode, PaperExampleMatrices)
{
    const LinearCode code = paperExampleCode();
    // H = [1110 100 / 1101 010 / 1011 001] per Equation 1.
    const Matrix h = code.parityCheckMatrix();
    const Matrix expected{
        {1, 1, 1, 0, 1, 0, 0},
        {1, 1, 0, 1, 0, 1, 0},
        {1, 0, 1, 1, 0, 0, 1},
    };
    EXPECT_EQ(h, expected);

    // G^T rows from Equation 1: c = G*d must satisfy H*c = 0.
    const Matrix g = code.generatorMatrix();
    EXPECT_EQ(g.rows(), 7u);
    EXPECT_EQ(g.cols(), 4u);
    EXPECT_EQ(h.mul(g), Matrix(3, 4));
}

TEST(LinearCode, EncodeMatchesPaperExample)
{
    const LinearCode code = paperExampleCode();
    // d = 1000 -> parity = first column of P = 111.
    EXPECT_EQ(code.encode(BitVec::fromString("1000")).toString(),
              "1000111");
    // d = 0001 -> parity = last column of P = 011.
    EXPECT_EQ(code.encode(BitVec::fromString("0001")).toString(),
              "0001011");
    EXPECT_EQ(code.encode(BitVec::fromString("0000")).toString(),
              "0000000");
}

TEST(LinearCode, AllCodewordsHaveZeroSyndrome)
{
    const LinearCode code = paperExampleCode();
    for (std::uint32_t d = 0; d < 16; ++d) {
        BitVec data(4);
        for (std::size_t i = 0; i < 4; ++i)
            data.set(i, (d >> i) & 1);
        EXPECT_TRUE(code.syndrome(code.encode(data)).isZero());
    }
}

TEST(LinearCode, SyndromeOfSingleErrorIsColumn)
{
    const LinearCode code = paperExampleCode();
    const BitVec codeword = code.encode(BitVec::fromString("1010"));
    for (std::size_t pos = 0; pos < code.n(); ++pos) {
        BitVec corrupted = codeword;
        corrupted.flip(pos);
        // Paper Equation 2: s = H * (c + e_i) = H_col(i).
        EXPECT_EQ(code.syndrome(corrupted), code.hColumn(pos));
        EXPECT_EQ(code.findColumn(code.syndrome(corrupted)), pos);
    }
}

TEST(LinearCode, FindColumnZeroAndMissing)
{
    const LinearCode code = paperExampleCode();
    EXPECT_EQ(code.findColumn(BitVec(3)), code.n());

    // A shortened code misses some syndromes: (6,3) code with columns
    // 011, 101, 110 — syndrome 111 matches nothing.
    const LinearCode shortened(Matrix{
        {0, 1, 1},
        {1, 0, 1},
        {1, 1, 0},
    });
    EXPECT_FALSE(shortened.isFullLength());
    EXPECT_EQ(shortened.findColumn(BitVec::fromString("111")),
              shortened.n());
}

TEST(LinearCode, HColumnCoversParity)
{
    const LinearCode code = paperExampleCode();
    for (std::size_t r = 0; r < 3; ++r)
        EXPECT_EQ(code.hColumn(4 + r), BitVec::unit(3, r));
}

TEST(LinearCode, ExtractDataInvertsEncodeProperty)
{
    Rng rng(3);
    const LinearCode code = randomSecCode(20, rng);
    for (int round = 0; round < 50; ++round) {
        BitVec data(20);
        for (std::size_t i = 0; i < 20; ++i)
            data.set(i, rng.bernoulli(0.5));
        EXPECT_EQ(code.extractData(code.encode(data)), data);
    }
}

TEST(LinearCode, EncodeIsLinear)
{
    Rng rng(5);
    const LinearCode code = randomSecCode(12, rng);
    for (int round = 0; round < 30; ++round) {
        BitVec a(12);
        BitVec b(12);
        for (std::size_t i = 0; i < 12; ++i) {
            a.set(i, rng.bernoulli(0.5));
            b.set(i, rng.bernoulli(0.5));
        }
        EXPECT_EQ(code.encode(a) ^ code.encode(b), code.encode(a ^ b));
    }
}

TEST(LinearCode, InvalidSecDetected)
{
    // Duplicate data columns.
    const LinearCode dup(Matrix{
        {1, 1},
        {1, 1},
    });
    EXPECT_FALSE(dup.isValidSec());

    // Weight-1 data column duplicates a parity column.
    const LinearCode unit_col(Matrix{
        {1, 1},
        {0, 1},
    });
    EXPECT_FALSE(unit_col.isValidSec());

    // Zero column.
    const LinearCode zero_col(Matrix{
        {0, 1},
        {0, 1},
    });
    EXPECT_FALSE(zero_col.isValidSec());
}

TEST(LinearCode, SyndromeIndexRoundTrip)
{
    BitVec s(5);
    s.set(0, true);
    s.set(3, true);
    EXPECT_EQ(syndromeIndex(s), 0b01001u);
    EXPECT_EQ(syndromeIndex(BitVec(5)), 0u);
}
