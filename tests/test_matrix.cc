/**
 * @file
 * Unit and property tests for gf2::Matrix.
 */

#include <gtest/gtest.h>

#include "gf2/matrix.hh"
#include "util/rng.hh"

using beer::gf2::BitVec;
using beer::gf2::Matrix;
using beer::util::Rng;

TEST(Matrix, ConstructAndAccess)
{
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    m.set(1, 2, true);
    EXPECT_TRUE(m.get(1, 2));
    EXPECT_FALSE(m.get(0, 2));
}

TEST(Matrix, InitializerList)
{
    Matrix m{{1, 0, 1}, {0, 1, 1}};
    EXPECT_TRUE(m.get(0, 0));
    EXPECT_FALSE(m.get(0, 1));
    EXPECT_TRUE(m.get(1, 2));
    EXPECT_EQ(m.row(0).toString(), "101");
    EXPECT_EQ(m.col(2).toString(), "11");
}

TEST(Matrix, IdentityProperties)
{
    const Matrix eye = Matrix::identity(5);
    for (std::size_t r = 0; r < 5; ++r)
        for (std::size_t c = 0; c < 5; ++c)
            EXPECT_EQ(eye.get(r, c), r == c);
    EXPECT_EQ(eye.rank(), 5u);
}

TEST(Matrix, MulVec)
{
    const Matrix m{{1, 1, 0}, {0, 1, 1}};
    EXPECT_EQ(m.mulVec(BitVec::fromString("100")).toString(), "10");
    EXPECT_EQ(m.mulVec(BitVec::fromString("110")).toString(), "01");
    EXPECT_EQ(m.mulVec(BitVec::fromString("111")).toString(), "00");
}

TEST(Matrix, MulMatchesIdentity)
{
    Rng rng(3);
    const Matrix m = Matrix::random(6, 9, rng);
    EXPECT_EQ(Matrix::identity(6).mul(m), m);
    EXPECT_EQ(m.mul(Matrix::identity(9)), m);
}

TEST(Matrix, MulAssociative)
{
    Rng rng(5);
    const Matrix a = Matrix::random(4, 5, rng);
    const Matrix b = Matrix::random(5, 6, rng);
    const Matrix c = Matrix::random(6, 3, rng);
    EXPECT_EQ(a.mul(b).mul(c), a.mul(b.mul(c)));
}

TEST(Matrix, TransposeInvolution)
{
    Rng rng(7);
    const Matrix m = Matrix::random(7, 11, rng);
    EXPECT_EQ(m.transpose().transpose(), m);
    EXPECT_EQ(m.transpose().rows(), 11u);
}

TEST(Matrix, TransposeCompatibleWithMul)
{
    Rng rng(9);
    const Matrix a = Matrix::random(4, 6, rng);
    const Matrix b = Matrix::random(6, 5, rng);
    EXPECT_EQ(a.mul(b).transpose(), b.transpose().mul(a.transpose()));
}

TEST(Matrix, RankProperties)
{
    Matrix zero(4, 4);
    EXPECT_EQ(zero.rank(), 0u);

    // Duplicate rows collapse rank.
    Matrix dup{{1, 0, 1}, {1, 0, 1}, {0, 1, 0}};
    EXPECT_EQ(dup.rank(), 2u);

    Rng rng(11);
    for (int round = 0; round < 20; ++round) {
        const Matrix m = Matrix::random(5, 8, rng);
        EXPECT_LE(m.rank(), 5u);
        EXPECT_EQ(m.rank(), m.transpose().rank());
    }
}

TEST(Matrix, SolveConsistentSystem)
{
    Rng rng(13);
    for (int round = 0; round < 30; ++round) {
        const Matrix m = Matrix::random(6, 9, rng);
        BitVec x(9);
        for (std::size_t i = 0; i < 9; ++i)
            x.set(i, rng.bernoulli(0.5));
        const BitVec b = m.mulVec(x);
        const auto solution = m.solve(b);
        ASSERT_TRUE(solution.has_value());
        EXPECT_EQ(m.mulVec(*solution), b);
    }
}

TEST(Matrix, SolveInconsistentSystem)
{
    // x0 = 0 and x0 = 1 simultaneously.
    Matrix m{{1}, {1}};
    BitVec b(2);
    b.set(1, true);
    EXPECT_FALSE(m.solve(b).has_value());
}

TEST(Matrix, NullBasisSpansKernel)
{
    Rng rng(17);
    for (int round = 0; round < 20; ++round) {
        const Matrix m = Matrix::random(4, 9, rng);
        const auto basis = m.nullBasis();
        EXPECT_EQ(basis.size(), 9u - m.rank());
        for (const BitVec &v : basis)
            EXPECT_TRUE(m.mulVec(v).isZero());
        // Basis vectors are linearly independent: stack them as rows.
        if (!basis.empty()) {
            Matrix stack(basis.size(), 9);
            for (std::size_t r = 0; r < basis.size(); ++r)
                stack.row(r) = basis[r];
            EXPECT_EQ(stack.rank(), basis.size());
        }
    }
}

TEST(Matrix, InverseRoundTrip)
{
    Rng rng(19);
    int invertible_seen = 0;
    for (int round = 0; round < 40; ++round) {
        const Matrix m = Matrix::random(6, 6, rng);
        const auto inverse = m.inverse();
        if (!inverse) {
            EXPECT_LT(m.rank(), 6u);
            continue;
        }
        ++invertible_seen;
        EXPECT_EQ(m.mul(*inverse), Matrix::identity(6));
        EXPECT_EQ(inverse->mul(m), Matrix::identity(6));
    }
    EXPECT_GT(invertible_seen, 0);
}

TEST(Matrix, ConcatAndColRange)
{
    const Matrix a{{1, 0}, {0, 1}};
    const Matrix b{{1}, {1}};
    const Matrix joined = Matrix::hconcat(a, b);
    EXPECT_EQ(joined.cols(), 3u);
    EXPECT_EQ(joined.col(2).toString(), "11");
    EXPECT_EQ(joined.colRange(0, 2), a);
    EXPECT_EQ(joined.colRange(2, 1), b);

    const Matrix stacked = Matrix::vconcat(a, a);
    EXPECT_EQ(stacked.rows(), 4u);
    EXPECT_EQ(stacked.row(3).toString(), "01");
}

TEST(Matrix, DuplicateAndZeroColumns)
{
    Matrix m{{1, 1, 0}, {0, 0, 0}};
    EXPECT_TRUE(m.hasDuplicateColumns());
    EXPECT_TRUE(m.hasZeroColumn());

    Matrix good{{1, 0, 1}, {0, 1, 1}};
    EXPECT_FALSE(good.hasDuplicateColumns());
    EXPECT_FALSE(good.hasZeroColumn());
}

TEST(Matrix, RrefIsIdempotent)
{
    Rng rng(23);
    for (int round = 0; round < 20; ++round) {
        const Matrix m = Matrix::random(5, 7, rng);
        const Matrix red = m.rref();
        EXPECT_EQ(red.rref(), red);
        EXPECT_EQ(red.rank(), m.rank());
    }
}

TEST(Matrix, MulVecLeftMatchesTranspose)
{
    Rng rng(29);
    const Matrix m = Matrix::random(5, 8, rng);
    BitVec v(5);
    for (std::size_t i = 0; i < 5; ++i)
        v.set(i, rng.bernoulli(0.5));
    EXPECT_EQ(m.mulVecLeft(v), m.transpose().mulVec(v));
}
