/**
 * @file
 * Tests for experimental miscorrection-profile measurement: the
 * sampled profile must converge to the exhaustive ground truth, the
 * threshold filter must reject transient noise (Figure 4's claim),
 * and the chip-based path must agree with the fast simulator path.
 */

#include <gtest/gtest.h>

#include "beer/measure.hh"
#include "beer/profile.hh"
#include "dram/chip.hh"
#include "ecc/hamming.hh"
#include "util/rng.hh"

using namespace beer;
using beer::dram::Chip;
using beer::dram::ChipConfig;
using beer::dram::makeVendorConfig;
using beer::ecc::LinearCode;
using beer::ecc::randomSecCode;
using beer::util::Rng;

TEST(Measure, SimProfileConvergesToExhaustive)
{
    Rng rng(3);
    for (std::size_t k : {8u, 11u, 16u}) {
        const LinearCode code = randomSecCode(k, rng);
        const auto patterns = chargedPatterns(k, 1);
        const auto counts =
            measureProfileSim(code, patterns, 0.3, 40000, rng);
        const auto measured = counts.threshold(1e-4);
        const auto expected = exhaustiveProfile(code, patterns);
        EXPECT_EQ(measured, expected) << "k=" << k;
    }
}

TEST(Measure, TwoChargedSimProfileConvergesToExhaustive)
{
    Rng rng(5);
    const LinearCode code = randomSecCode(8, rng);
    const auto patterns = chargedPatterns(8, 2);
    const auto counts =
        measureProfileSim(code, patterns, 0.3, 40000, rng);
    EXPECT_EQ(counts.threshold(1e-4),
              exhaustiveProfile(code, patterns));
}

TEST(Measure, ProbabilityAndMerge)
{
    Rng rng(7);
    const LinearCode code = randomSecCode(8, rng);
    const auto patterns = chargedPatterns(8, 1);
    auto a = measureProfileSim(code, patterns, 0.3, 5000, rng);
    const auto b = measureProfileSim(code, patterns, 0.3, 5000, rng);
    const auto words_before = a.wordsTested[0];
    a.merge(b);
    EXPECT_EQ(a.wordsTested[0], words_before + b.wordsTested[0]);
    EXPECT_LE(a.probability(0, 1), 1.0);
}

TEST(Measure, MergeAccumulateAddsOverlappingObservations)
{
    // Accumulate is one experiment grown by another: overlapping
    // patterns add both error counts and denominators, new patterns
    // append.
    Rng rng(19);
    const LinearCode code = randomSecCode(8, rng);
    const auto one = chargedPatterns(8, 1);
    const auto two = chargedPatterns(8, 2);

    auto a = measureProfileSim(code, one, 0.3, 4000, rng);
    auto b = measureProfileSim(code, one, 0.3, 4000, rng);
    auto extra = measureProfileSim(code, two, 0.3, 2000, rng);
    b.merge(extra, ProfileCounts::MergeMode::Accumulate);

    const auto total_before =
        a.totalObservations() + b.totalObservations();
    a.merge(b, ProfileCounts::MergeMode::Accumulate);
    EXPECT_EQ(a.totalObservations(), total_before);
    EXPECT_EQ(a.patterns.size(), one.size() + two.size());
    for (std::size_t p = 0; p < one.size(); ++p)
        EXPECT_EQ(a.wordsTested[p], 8000u) << "pattern " << p;
}

TEST(Measure, MergeAppendDisjointAppendsFreshPatterns)
{
    Rng rng(23);
    const LinearCode code = randomSecCode(8, rng);
    auto a = measureProfileSim(code, chargedPatterns(8, 1), 0.3, 4000,
                               rng);
    const auto b = measureProfileSim(code, chargedPatterns(8, 2), 0.3,
                                     2000, rng);
    const auto count_before = a.patterns.size();
    a.merge(b, ProfileCounts::MergeMode::AppendDisjoint);
    EXPECT_EQ(a.patterns.size(), count_before + b.patterns.size());
    // Appended patterns keep their own denominators untouched.
    EXPECT_EQ(a.wordsTested.back(), b.wordsTested.back());
}

TEST(Measure, MergeAppendDisjointRejectsOverlap)
{
    // Overlap under AppendDisjoint is a caller bug: the caller
    // promised fresh patterns. Debug builds abort on it; release
    // builds fall back to accumulating (documented contract).
    Rng rng(29);
    const LinearCode code = randomSecCode(8, rng);
    const auto patterns = chargedPatterns(8, 1);
    auto a = measureProfileSim(code, patterns, 0.3, 2000, rng);
    const auto b = measureProfileSim(code, patterns, 0.3, 2000, rng);
#ifndef NDEBUG
    EXPECT_DEATH(
        a.merge(b, ProfileCounts::MergeMode::AppendDisjoint),
        "AppendDisjoint");
#else
    const auto words_before = a.wordsTested[0];
    a.merge(b, ProfileCounts::MergeMode::AppendDisjoint);
    EXPECT_EQ(a.wordsTested[0], words_before + b.wordsTested[0]);
#endif
}

TEST(Measure, ChipProfileMatchesGroundTruth)
{
    // End-to-end: measure on a simulated chip (iid mode so that each
    // pause samples fresh error patterns) and compare to the secret
    // code's exhaustive profile.
    ChipConfig config = makeVendorConfig('A', 8, 11);
    config.map.rows = 64;
    config.iidErrors = true;
    Chip chip(config);

    MeasureConfig mc;
    // High BER region so the few hundred words see many error
    // patterns per pause.
    for (double ber : {0.05, 0.1, 0.2, 0.3})
        mc.pausesSeconds.push_back(
            chip.retentionModel().pauseForBitErrorRate(ber, 80.0));
    mc.repeatsPerPause = 30;

    const auto patterns = chargedPatterns(8, 1);
    const auto counts = measureProfileOnChip(chip, patterns, mc);
    const auto measured = counts.threshold(1e-4);
    EXPECT_EQ(measured,
              exhaustiveProfile(chip.groundTruthCode(), patterns));
}

TEST(Measure, ThresholdFiltersTransientNoise)
{
    // With transient read noise, raw counts show spurious errors in
    // bits that can never miscorrect; the threshold filter must still
    // recover the exact profile (paper Section 5.2 / Figure 4).
    ChipConfig config = makeVendorConfig('A', 8, 13);
    config.map.rows = 64;
    config.iidErrors = true;
    config.transientErrorRate = 1e-4;
    Chip chip(config);

    MeasureConfig mc;
    for (double ber : {0.1, 0.2, 0.3})
        mc.pausesSeconds.push_back(
            chip.retentionModel().pauseForBitErrorRate(ber, 80.0));
    mc.repeatsPerPause = 30;

    const auto patterns = chargedPatterns(8, 1);
    const auto counts = measureProfileOnChip(chip, patterns, mc);

    // An aggressive threshold of 0 (any observation counts) would
    // pollute the profile; the paper's filter removes the noise.
    const auto unfiltered = counts.threshold(0.0);
    const auto filtered = counts.threshold(5e-3);
    const auto expected =
        exhaustiveProfile(chip.groundTruthCode(), patterns);
    EXPECT_EQ(filtered, expected);
    EXPECT_NE(unfiltered, expected);
}

TEST(Measure, PaperDefaultConfigShape)
{
    const MeasureConfig config = MeasureConfig::paperDefault();
    ASSERT_EQ(config.pausesSeconds.size(), 21u);
    EXPECT_DOUBLE_EQ(config.pausesSeconds.front(), 120.0);
    EXPECT_DOUBLE_EQ(config.pausesSeconds.back(), 1320.0);
    EXPECT_DOUBLE_EQ(config.temperatureC, 80.0);
}
