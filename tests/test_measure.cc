/**
 * @file
 * Tests for experimental miscorrection-profile measurement: the
 * sampled profile must converge to the exhaustive ground truth, the
 * threshold filter must reject transient noise (Figure 4's claim),
 * and the chip-based path must agree with the fast simulator path.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "beer/measure.hh"
#include "beer/profile.hh"
#include "dram/chip.hh"
#include "dram/fault_proxy.hh"
#include "dram/trace.hh"
#include "ecc/hamming.hh"
#include "util/rng.hh"

using namespace beer;
using beer::dram::Chip;
using beer::dram::ChipConfig;
using beer::dram::makeVendorConfig;
using beer::ecc::LinearCode;
using beer::ecc::randomSecCode;
using beer::util::Rng;

TEST(Measure, SimProfileConvergesToExhaustive)
{
    Rng rng(3);
    for (std::size_t k : {8u, 11u, 16u}) {
        const LinearCode code = randomSecCode(k, rng);
        const auto patterns = chargedPatterns(k, 1);
        const auto counts =
            measureProfileSim(code, patterns, 0.3, 40000, rng);
        const auto measured = counts.threshold(1e-4);
        const auto expected = exhaustiveProfile(code, patterns);
        EXPECT_EQ(measured, expected) << "k=" << k;
    }
}

TEST(Measure, TwoChargedSimProfileConvergesToExhaustive)
{
    Rng rng(5);
    const LinearCode code = randomSecCode(8, rng);
    const auto patterns = chargedPatterns(8, 2);
    const auto counts =
        measureProfileSim(code, patterns, 0.3, 40000, rng);
    EXPECT_EQ(counts.threshold(1e-4),
              exhaustiveProfile(code, patterns));
}

TEST(Measure, ProbabilityAndMerge)
{
    Rng rng(7);
    const LinearCode code = randomSecCode(8, rng);
    const auto patterns = chargedPatterns(8, 1);
    auto a = measureProfileSim(code, patterns, 0.3, 5000, rng);
    const auto b = measureProfileSim(code, patterns, 0.3, 5000, rng);
    const auto words_before = a.wordsTested[0];
    a.merge(b);
    EXPECT_EQ(a.wordsTested[0], words_before + b.wordsTested[0]);
    EXPECT_LE(a.probability(0, 1), 1.0);
}

TEST(Measure, MergeAccumulateAddsOverlappingObservations)
{
    // Accumulate is one experiment grown by another: overlapping
    // patterns add both error counts and denominators, new patterns
    // append.
    Rng rng(19);
    const LinearCode code = randomSecCode(8, rng);
    const auto one = chargedPatterns(8, 1);
    const auto two = chargedPatterns(8, 2);

    auto a = measureProfileSim(code, one, 0.3, 4000, rng);
    auto b = measureProfileSim(code, one, 0.3, 4000, rng);
    auto extra = measureProfileSim(code, two, 0.3, 2000, rng);
    b.merge(extra, ProfileCounts::MergeMode::Accumulate);

    const auto total_before =
        a.totalObservations() + b.totalObservations();
    a.merge(b, ProfileCounts::MergeMode::Accumulate);
    EXPECT_EQ(a.totalObservations(), total_before);
    EXPECT_EQ(a.patterns.size(), one.size() + two.size());
    for (std::size_t p = 0; p < one.size(); ++p)
        EXPECT_EQ(a.wordsTested[p], 8000u) << "pattern " << p;
}

TEST(Measure, MergeAppendDisjointAppendsFreshPatterns)
{
    Rng rng(23);
    const LinearCode code = randomSecCode(8, rng);
    auto a = measureProfileSim(code, chargedPatterns(8, 1), 0.3, 4000,
                               rng);
    const auto b = measureProfileSim(code, chargedPatterns(8, 2), 0.3,
                                     2000, rng);
    const auto count_before = a.patterns.size();
    a.merge(b, ProfileCounts::MergeMode::AppendDisjoint);
    EXPECT_EQ(a.patterns.size(), count_before + b.patterns.size());
    // Appended patterns keep their own denominators untouched.
    EXPECT_EQ(a.wordsTested.back(), b.wordsTested.back());
}

TEST(Measure, MergeAppendDisjointRejectsOverlap)
{
    // Overlap under AppendDisjoint is a caller bug: the caller
    // promised fresh patterns. Debug builds abort on it; release
    // builds fall back to accumulating (documented contract).
    Rng rng(29);
    const LinearCode code = randomSecCode(8, rng);
    const auto patterns = chargedPatterns(8, 1);
    auto a = measureProfileSim(code, patterns, 0.3, 2000, rng);
    const auto b = measureProfileSim(code, patterns, 0.3, 2000, rng);
#ifndef NDEBUG
    EXPECT_DEATH(
        a.merge(b, ProfileCounts::MergeMode::AppendDisjoint),
        "AppendDisjoint");
#else
    const auto words_before = a.wordsTested[0];
    a.merge(b, ProfileCounts::MergeMode::AppendDisjoint);
    EXPECT_EQ(a.wordsTested[0], words_before + b.wordsTested[0]);
#endif
}

TEST(Measure, ChipProfileMatchesGroundTruth)
{
    // End-to-end: measure on a simulated chip (iid mode so that each
    // pause samples fresh error patterns) and compare to the secret
    // code's exhaustive profile.
    ChipConfig config = makeVendorConfig('A', 8, 11);
    config.map.rows = 64;
    config.iidErrors = true;
    Chip chip(config);

    MeasureConfig mc;
    // High BER region so the few hundred words see many error
    // patterns per pause.
    for (double ber : {0.05, 0.1, 0.2, 0.3})
        mc.pausesSeconds.push_back(
            chip.retentionModel().pauseForBitErrorRate(ber, 80.0));
    mc.repeatsPerPause = 30;

    const auto patterns = chargedPatterns(8, 1);
    const auto counts = measureProfileOnChip(chip, patterns, mc);
    const auto measured = counts.threshold(1e-4);
    EXPECT_EQ(measured,
              exhaustiveProfile(chip.groundTruthCode(), patterns));
}

TEST(Measure, ThresholdFiltersTransientNoise)
{
    // With transient read noise, raw counts show spurious errors in
    // bits that can never miscorrect; the threshold filter must still
    // recover the exact profile (paper Section 5.2 / Figure 4).
    ChipConfig config = makeVendorConfig('A', 8, 13);
    config.map.rows = 64;
    config.iidErrors = true;
    config.transientErrorRate = 1e-4;
    Chip chip(config);

    MeasureConfig mc;
    for (double ber : {0.1, 0.2, 0.3})
        mc.pausesSeconds.push_back(
            chip.retentionModel().pauseForBitErrorRate(ber, 80.0));
    mc.repeatsPerPause = 30;

    const auto patterns = chargedPatterns(8, 1);
    const auto counts = measureProfileOnChip(chip, patterns, mc);

    // An aggressive threshold of 0 (any observation counts) would
    // pollute the profile; the paper's filter removes the noise.
    const auto unfiltered = counts.threshold(0.0);
    const auto filtered = counts.threshold(5e-3);
    const auto expected =
        exhaustiveProfile(chip.groundTruthCode(), patterns);
    EXPECT_EQ(filtered, expected);
    EXPECT_NE(unfiltered, expected);
}

TEST(Measure, AdaptiveQuorumBitIdenticalToSingleVoteUnderZeroNoise)
{
    // The adaptive policy's backward-compatibility contract: on a
    // noise-free chip its votes always agree, the first vote's data is
    // used unchanged, and every observable measurement output matches
    // the historical single-read path bit for bit.
    ChipConfig config = makeVendorConfig('A', 8, 31);
    config.map.rows = 64;
    config.iidErrors = true;

    const auto measure_for = [](const Chip &chip) {
        MeasureConfig mc;
        for (double ber : {0.1, 0.2, 0.3})
            mc.pausesSeconds.push_back(
                chip.retentionModel().pauseForBitErrorRate(ber, 80.0));
        mc.repeatsPerPause = 20;
        return mc;
    };
    const auto patterns = chargedPatterns(8, 1);

    Chip single_chip(config);
    MeasureConfig single = measure_for(single_chip);
    const auto legacy =
        measureProfileOnChip(single_chip, patterns, single);

    Chip adaptive_chip(config);
    MeasureConfig adaptive = measure_for(adaptive_chip);
    adaptive.quorum.votes = 1;
    adaptive.quorum.adaptive = true;
    QuorumEstimator estimator;
    adaptive.estimator = &estimator;
    const auto quorum =
        measureProfileOnChip(adaptive_chip, patterns, adaptive);

    EXPECT_EQ(legacy.errorCounts, quorum.errorCounts);
    EXPECT_EQ(legacy.wordsTested, quorum.wordsTested);
    EXPECT_EQ(legacy.threshold(1e-4), quorum.threshold(1e-4));
    EXPECT_EQ(quorum.totalDisagreements(), 0u);
    // The estimator really ran (base cost is 2 reads per experiment)
    // and never saw a disagreement.
    EXPECT_GT(estimator.samples, 0u);
    EXPECT_DOUBLE_EQ(estimator.rate, 0.0);
    EXPECT_EQ(estimator.escalations, 0u);
    EXPECT_EQ(quorum.totalVotesSpent(), 2 * estimator.samples);
}

TEST(Measure, AdaptiveQuorumTraceReplayRoundTrips)
{
    // An adaptive-quorum measurement under real read noise must replay
    // bit-identically from its own trace: the escalation schedule is a
    // pure function of the trace meta (which seeds the estimator) and
    // the recorded reads.
    ChipConfig config = makeVendorConfig('B', 8, 37);
    config.map.rows = 64;
    config.iidErrors = true;
    Chip chip(config);
    dram::FaultInjectionConfig chaos;
    chaos.transientFlipRate = 2e-3;
    chaos.seed = 71;
    dram::FaultInjectionProxy proxy(chip, chaos);

    MeasureConfig mc;
    for (double ber : {0.1, 0.3})
        mc.pausesSeconds.push_back(
            chip.retentionModel().pauseForBitErrorRate(ber, 80.0));
    mc.repeatsPerPause = 15;
    mc.quorum.votes = 3;
    mc.quorum.escalatedVotes = 7;
    mc.quorum.adaptive = true;
    mc.quorum.initialEstimate = 0.01;

    const auto patterns = chargedPatterns(8, 1);
    const auto words = dram::trueCellWords(chip);
    std::ostringstream recorded;
    const ProfileCounts live =
        recordProfileTrace(proxy, patterns, mc, words, recorded);
    ASSERT_GT(live.totalDisagreements(), 0u)
        << "noise too weak to exercise the adaptive path";

    std::istringstream stored(recorded.str());
    dram::TraceReplayBackend trace(stored);
    const ProfileCounts replayed = replayProfileTrace(trace);
    EXPECT_TRUE(trace.atEnd());
    EXPECT_EQ(live.errorCounts, replayed.errorCounts);
    EXPECT_EQ(live.wordsTested, replayed.wordsTested);
    EXPECT_EQ(live.disagreements, replayed.disagreements);
    EXPECT_EQ(live.votesSpent, replayed.votesSpent);
}

TEST(Measure, PaperDefaultConfigShape)
{
    const MeasureConfig config = MeasureConfig::paperDefault();
    ASSERT_EQ(config.pausesSeconds.size(), 21u);
    EXPECT_DOUBLE_EQ(config.pausesSeconds.front(), 120.0);
    EXPECT_DOUBLE_EQ(config.pausesSeconds.back(), 1320.0);
    EXPECT_DOUBLE_EQ(config.temperatureC, 80.0);
}
