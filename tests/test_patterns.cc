/**
 * @file
 * Tests for BEER test-pattern generation.
 */

#include <gtest/gtest.h>

#include <set>

#include "beer/patterns.hh"

using namespace beer;
using beer::dram::CellType;
using beer::gf2::BitVec;

namespace
{

std::size_t
choose(std::size_t n, std::size_t r)
{
    std::size_t out = 1;
    for (std::size_t i = 0; i < r; ++i)
        out = out * (n - i) / (i + 1);
    return out;
}

} // anonymous namespace

TEST(Patterns, OneChargedCountAndContent)
{
    const auto patterns = chargedPatterns(5, 1);
    ASSERT_EQ(patterns.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
        ASSERT_EQ(patterns[i].size(), 1u);
        EXPECT_EQ(patterns[i][0], i);
    }
}

TEST(Patterns, TwoChargedCountMatchesBinomial)
{
    for (std::size_t k : {4u, 8u, 16u}) {
        const auto patterns = chargedPatterns(k, 2);
        EXPECT_EQ(patterns.size(), choose(k, 2));
        std::set<std::pair<std::size_t, std::size_t>> seen;
        for (const auto &pattern : patterns) {
            ASSERT_EQ(pattern.size(), 2u);
            EXPECT_LT(pattern[0], pattern[1]);
            seen.insert({pattern[0], pattern[1]});
        }
        EXPECT_EQ(seen.size(), patterns.size()); // all distinct
    }
}

TEST(Patterns, ThreeChargedCount)
{
    EXPECT_EQ(chargedPatterns(7, 3).size(), choose(7, 3));
    EXPECT_EQ(chargedPatterns(4, 4).size(), 1u);
}

TEST(Patterns, UnionConcatenates)
{
    const auto both = chargedPatternUnion(6, {1, 2});
    EXPECT_EQ(both.size(), 6u + choose(6, 2));
    EXPECT_EQ(both[0].size(), 1u);
    EXPECT_EQ(both[6].size(), 2u);
}

TEST(Patterns, DatawordForTrueCells)
{
    // True-cells: CHARGED = 1.
    const BitVec data = datawordForPattern({1, 3}, 5, CellType::True);
    EXPECT_EQ(data.toString(), "01010");
}

TEST(Patterns, DatawordForAntiCells)
{
    // Anti-cells: CHARGED = 0, background DISCHARGED = 1.
    const BitVec data = datawordForPattern({1, 3}, 5, CellType::Anti);
    EXPECT_EQ(data.toString(), "10101");
}

TEST(Patterns, PatternContains)
{
    const TestPattern pattern = {2, 5, 9};
    EXPECT_TRUE(patternContains(pattern, 5));
    EXPECT_FALSE(patternContains(pattern, 4));
    EXPECT_FALSE(patternContains({}, 0));
}
