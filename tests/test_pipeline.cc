/**
 * @file
 * End-to-end integration tests: recoverEccFunction() against simulated
 * vendor chips must uniquely recover the secret on-die ECC function
 * through the external chip interface alone — the paper's headline
 * experiment (Section 5), validated here against ground truth, which
 * the authors could not do on real chips.
 */

#include <gtest/gtest.h>

#include "beer/beer.hh"
#include "dram/chip.hh"
#include "ecc/code_equiv.hh"

using namespace beer;
using beer::dram::Chip;
using beer::dram::ChipConfig;
using beer::dram::makeVendorConfig;

namespace
{

RecoveryOptions
fastOptions(const Chip &chip)
{
    RecoveryOptions options;
    options.measure.pausesSeconds.clear();
    for (double ber : {0.05, 0.15, 0.3})
        options.measure.pausesSeconds.push_back(
            chip.retentionModel().pauseForBitErrorRate(ber, 80.0));
    options.measure.repeatsPerPause = 25;
    options.measure.thresholdProbability = 1e-4;
    return options;
}

void
expectRecovers(char vendor, std::size_t k, std::uint64_t seed)
{
    ChipConfig config = makeVendorConfig(vendor, k, seed);
    config.map.rows = 64;
    config.iidErrors = true;
    Chip chip(config);

    const auto report = recoverEccFunction(chip, fastOptions(chip));
    ASSERT_TRUE(report.succeeded())
        << "vendor " << vendor << " k=" << k << " solutions="
        << report.solve.solutions.size();
    EXPECT_TRUE(ecc::equivalent(report.recoveredCode(),
                                chip.groundTruthCode()));
}

} // anonymous namespace

TEST(Pipeline, RecoversVendorA)
{
    expectRecovers('A', 16, 101);
}

TEST(Pipeline, RecoversVendorB)
{
    expectRecovers('B', 16, 102);
}

TEST(Pipeline, RecoversVendorC)
{
    expectRecovers('C', 16, 103);
}

TEST(Pipeline, RecoversAcrossWordSizes)
{
    expectRecovers('A', 8, 104);
    expectRecovers('A', 24, 105);
}

TEST(Pipeline, SameModelChipsYieldSameProfile)
{
    // Paper Section 5.1.3: chips of the same model (same secret
    // function, different error seeds) give identical miscorrection
    // profiles.
    ChipConfig config1 = makeVendorConfig('A', 8, 777);
    ChipConfig config2 = makeVendorConfig('A', 8, 777);
    config2.seed = 778; // same function, different per-cell errors
    config1.map.rows = config2.map.rows = 64;
    config1.iidErrors = config2.iidErrors = true;
    Chip chip1(config1);
    Chip chip2(config2);
    ASSERT_TRUE(chip1.groundTruthCode() == chip2.groundTruthCode());

    const auto patterns = chargedPatterns(8, 1);
    MeasureConfig mc;
    for (double ber : {0.1, 0.2, 0.3})
        mc.pausesSeconds.push_back(
            chip1.retentionModel().pauseForBitErrorRate(ber, 80.0));
    mc.repeatsPerPause = 25;

    const auto profile1 =
        measureProfileOnChip(chip1, patterns, mc).threshold(1e-4);
    const auto profile2 =
        measureProfileOnChip(chip2, patterns, mc).threshold(1e-4);
    EXPECT_EQ(profile1, profile2);
}

TEST(Pipeline, DifferentVendorsYieldDifferentProfiles)
{
    // Paper Figure 3: different manufacturers' profiles differ.
    auto profile_of = [](char vendor, std::uint64_t seed) {
        ChipConfig config = makeVendorConfig(vendor, 8, seed);
        config.map.rows = 64;
        config.iidErrors = true;
        Chip chip(config);
        MeasureConfig mc;
        for (double ber : {0.1, 0.2, 0.3})
            mc.pausesSeconds.push_back(
                chip.retentionModel().pauseForBitErrorRate(ber, 80.0));
        mc.repeatsPerPause = 25;
        return measureProfileOnChip(chip, chargedPatterns(8, 1), mc)
            .threshold(1e-4);
    };
    EXPECT_NE(profile_of('A', 201), profile_of('B', 201));
}
