/**
 * @file
 * Tests for miscorrection profiles: the support-inclusion predicate is
 * validated against brute-force error-pattern enumeration, and the
 * paper's Table 2 is reproduced exactly.
 */

#include <gtest/gtest.h>

#include "beer/profile.hh"
#include "ecc/hamming.hh"
#include "util/rng.hh"

using namespace beer;
using beer::ecc::LinearCode;
using beer::ecc::paperExampleCode;
using beer::ecc::randomSecCode;
using beer::util::Rng;

TEST(Profile, PaperTable2Reproduced)
{
    // Table 2: for the Equation-1 code, only the pattern charging data
    // bit 0 can miscorrect, and it can miscorrect every other bit.
    const LinearCode code = paperExampleCode();
    const auto profile = exhaustiveProfile(code, chargedPatterns(4, 1));

    ASSERT_EQ(profile.patterns.size(), 4u);
    // Pattern charging bit 0: miscorrections possible at bits 1, 2, 3.
    EXPECT_EQ(profile.patterns[0].miscorrectable.toString(), "0111");
    // Patterns charging bits 1..3: no miscorrections possible.
    EXPECT_EQ(profile.patterns[1].miscorrectable.toString(), "0000");
    EXPECT_EQ(profile.patterns[2].miscorrectable.toString(), "0000");
    EXPECT_EQ(profile.patterns[3].miscorrectable.toString(), "0000");
}

TEST(Profile, PredicateMatchesBruteForceOneCharged)
{
    Rng rng(3);
    for (std::size_t k : {4u, 6u, 8u, 11u}) {
        for (int round = 0; round < 5; ++round) {
            const LinearCode code = randomSecCode(k, rng);
            for (const auto &pattern : chargedPatterns(k, 1)) {
                for (std::size_t bit = 0; bit < k; ++bit) {
                    if (patternContains(pattern, bit))
                        continue;
                    EXPECT_EQ(
                        miscorrectionPossible(code, pattern, bit),
                        miscorrectionPossibleBruteForce(code, pattern,
                                                        bit))
                        << "k=" << k << " bit=" << bit;
                }
            }
        }
    }
}

TEST(Profile, PredicateMatchesBruteForceTwoCharged)
{
    Rng rng(5);
    for (std::size_t k : {4u, 6u, 8u}) {
        for (int round = 0; round < 3; ++round) {
            const LinearCode code = randomSecCode(k, rng);
            for (const auto &pattern : chargedPatterns(k, 2)) {
                for (std::size_t bit = 0; bit < k; ++bit) {
                    if (patternContains(pattern, bit))
                        continue;
                    EXPECT_EQ(
                        miscorrectionPossible(code, pattern, bit),
                        miscorrectionPossibleBruteForce(code, pattern,
                                                        bit));
                }
            }
        }
    }
}

TEST(Profile, PredicateMatchesBruteForceThreeCharged)
{
    Rng rng(7);
    const LinearCode code = randomSecCode(6, rng);
    for (const auto &pattern : chargedPatterns(6, 3)) {
        for (std::size_t bit = 0; bit < 6; ++bit) {
            if (patternContains(pattern, bit))
                continue;
            EXPECT_EQ(miscorrectionPossible(code, pattern, bit),
                      miscorrectionPossibleBruteForce(code, pattern,
                                                      bit));
        }
    }
}

TEST(Profile, FullLengthOneChargedProfilesDifferForDifferentCodes)
{
    // The disambiguation core of BEER: different functions produce
    // different profiles (for full-length codes, already under
    // 1-CHARGED patterns).
    Rng rng(9);
    const auto patterns = chargedPatterns(11, 1);
    const LinearCode a = randomSecCode(11, rng);
    const LinearCode b = randomSecCode(11, rng);
    ASSERT_FALSE(a == b);
    EXPECT_NE(exhaustiveProfile(a, patterns),
              exhaustiveProfile(b, patterns));
}

TEST(Profile, EquivalentCodesShareProfiles)
{
    // Row-permuted (equivalent) codes must be indistinguishable.
    const LinearCode code = paperExampleCode();
    const auto &p = code.pMatrix();
    beer::gf2::Matrix permuted(p.rows(), p.cols());
    permuted.row(0) = p.row(2);
    permuted.row(1) = p.row(0);
    permuted.row(2) = p.row(1);
    const LinearCode other(std::move(permuted));

    const auto patterns = chargedPatternUnion(4, {1, 2});
    EXPECT_EQ(exhaustiveProfile(code, patterns),
              exhaustiveProfile(other, patterns));
}

TEST(Profile, ChargedBitsNeverMarked)
{
    Rng rng(11);
    const LinearCode code = randomSecCode(8, rng);
    const auto profile =
        exhaustiveProfile(code, chargedPatternUnion(8, {1, 2}));
    for (const auto &entry : profile.patterns)
        for (std::size_t bit : entry.pattern)
            EXPECT_FALSE(entry.miscorrectable.get(bit));
}

TEST(Profile, ToStringRendersTable)
{
    const LinearCode code = paperExampleCode();
    const auto profile = exhaustiveProfile(code, chargedPatterns(4, 1));
    const std::string text = profile.toString();
    // Pattern 0 line: charged at 0, miscorrections at 1..3.
    EXPECT_NE(text.find("[CDDD] -> [?111]"), std::string::npos);
    EXPECT_NE(text.find("[DCDD] -> [-?--]"), std::string::npos);
}
