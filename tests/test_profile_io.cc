/**
 * @file
 * Tests for the miscorrection-profile text format used by the
 * tools/beer_solve pipeline.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "beer/profile.hh"
#include "ecc/hamming.hh"
#include "util/rng.hh"

using namespace beer;
using beer::ecc::randomSecCode;
using beer::util::Rng;

TEST(ProfileIo, RoundTrip)
{
    Rng rng(3);
    for (std::size_t k : {4u, 8u, 16u}) {
        const auto code = randomSecCode(k, rng);
        const auto profile =
            exhaustiveProfile(code, chargedPatternUnion(k, {1, 2}));
        std::istringstream in(serializeProfile(profile));
        EXPECT_EQ(parseProfile(in), profile) << "k=" << k;
    }
}

TEST(ProfileIo, ParsesCommentsAndBlankLines)
{
    std::istringstream in(
        "# header comment\n"
        "\n"
        "k 4\n"
        "0 0111  # trailing comment\n"
        "1,2 0000\n");
    const auto profile = parseProfile(in);
    EXPECT_EQ(profile.k, 4u);
    ASSERT_EQ(profile.patterns.size(), 2u);
    EXPECT_EQ(profile.patterns[0].pattern, TestPattern{0});
    EXPECT_EQ(profile.patterns[0].miscorrectable.toString(), "0111");
    EXPECT_EQ(profile.patterns[1].pattern, (TestPattern{1, 2}));
}

TEST(ProfileIo, SortsChargedBits)
{
    std::istringstream in("k 4\n3,1 0000\n");
    const auto profile = parseProfile(in);
    EXPECT_EQ(profile.patterns[0].pattern, (TestPattern{1, 3}));
}

TEST(ProfileIo, SerializesCurrentFormatVersion)
{
    const auto profile = exhaustiveProfile(ecc::paperExampleCode(),
                                           chargedPatterns(4, 1));
    const std::string text = serializeProfile(profile);
    EXPECT_NE(text.find("version " +
                        std::to_string(kProfileFormatVersion)),
              std::string::npos);

    std::istringstream in(text);
    MiscorrectionProfile parsed;
    const ProfileParseStatus status = tryParseProfile(in, parsed);
    ASSERT_TRUE(status.ok) << status.error;
    EXPECT_EQ(status.version, kProfileFormatVersion);
    EXPECT_EQ(parsed, profile);
}

TEST(ProfileIo, VersionlessInputParsesAsLegacyV1)
{
    std::istringstream in("k 4\n0 0111\n");
    MiscorrectionProfile parsed;
    const ProfileParseStatus status = tryParseProfile(in, parsed);
    ASSERT_TRUE(status.ok) << status.error;
    EXPECT_EQ(status.version, 1u);
    EXPECT_EQ(parsed.k, 4u);
}

TEST(ProfileIo, ExplicitVersion1Accepted)
{
    std::istringstream in("version 1\nk 4\n0 0111\n");
    MiscorrectionProfile parsed;
    const ProfileParseStatus status = tryParseProfile(in, parsed);
    ASSERT_TRUE(status.ok) << status.error;
    EXPECT_EQ(status.version, 1u);
}

TEST(ProfileIo, FutureVersionRejectedWithoutTerminating)
{
    std::istringstream in("version 99\nk 4\n0 0111\n");
    MiscorrectionProfile parsed;
    const ProfileParseStatus status = tryParseProfile(in, parsed);
    EXPECT_FALSE(status.ok);
    EXPECT_NE(status.error.find("unsupported format version 99"),
              std::string::npos)
        << status.error;
}

TEST(ProfileIo, MalformedVersionLineRejected)
{
    std::istringstream in("version zero\nk 4\n0 0111\n");
    MiscorrectionProfile parsed;
    const ProfileParseStatus status = tryParseProfile(in, parsed);
    EXPECT_FALSE(status.ok);
    EXPECT_NE(status.error.find("version"), std::string::npos);
}

TEST(ProfileIo, TryParseReportsErrorsFatalWouldRaise)
{
    // Same malformed inputs as the death tests below, through the
    // non-terminating entry point services use.
    const char *bad[] = {
        "0 0111\n",           // missing header
        "k 4\n0 01110\n",     // wrong bitmap length
        "k 4\n7 0111\n",      // charged bit out of range
        "k 4\n0 1111\n",      // charged bit marked miscorrectable
        "k 4\n0 01x1\n",      // non-binary bitmap
    };
    for (const char *text : bad) {
        std::istringstream in(text);
        MiscorrectionProfile parsed;
        const ProfileParseStatus status = tryParseProfile(in, parsed);
        EXPECT_FALSE(status.ok) << text;
        EXPECT_FALSE(status.error.empty()) << text;
    }
}

TEST(ProfileIo, SuspectMarkerRoundTripsAsVersion3)
{
    MiscorrectionProfile profile;
    profile.k = 4;
    PatternProfile flagged;
    flagged.pattern = {0};
    flagged.miscorrectable = gf2::BitVec(4);
    flagged.miscorrectable.set(2, true);
    flagged.suspect = true;
    PatternProfile clean;
    clean.pattern = {1, 2};
    clean.miscorrectable = gf2::BitVec(4);
    profile.patterns.push_back(flagged);
    profile.patterns.push_back(clean);

    // A profile carrying suspect metadata declares the bumped version
    // so strict old readers fail loudly instead of dropping the " ?".
    const std::string text = serializeProfile(profile);
    EXPECT_NE(text.find("version 3"), std::string::npos) << text;
    EXPECT_NE(text.find(" ?"), std::string::npos) << text;

    std::istringstream in(text);
    MiscorrectionProfile parsed;
    const ProfileParseStatus status = tryParseProfile(in, parsed);
    ASSERT_TRUE(status.ok) << status.error;
    EXPECT_EQ(status.version, 3u);
    EXPECT_EQ(parsed, profile);
    ASSERT_EQ(parsed.patterns.size(), 2u);
    EXPECT_TRUE(parsed.patterns[0].suspect);
    EXPECT_FALSE(parsed.patterns[1].suspect);
}

TEST(ProfileIo, SuspectFreeProfileKeepsVersion2)
{
    // Marker-free profiles must keep emitting the established version
    // so every existing reader still accepts them byte-for-byte.
    const auto profile = exhaustiveProfile(ecc::paperExampleCode(),
                                           chargedPatterns(4, 1));
    const std::string text = serializeProfile(profile);
    EXPECT_NE(text.find("version 2"), std::string::npos) << text;
    EXPECT_EQ(text.find(" ?"), std::string::npos) << text;
}

TEST(ProfileIo, SuspectExcludedFromEquality)
{
    // suspect is measurement metadata, not profile content: two
    // profiles differing only in markers compare equal (the cache and
    // the solver treat them as the same evidence).
    MiscorrectionProfile a;
    a.k = 4;
    PatternProfile entry;
    entry.pattern = {0};
    entry.miscorrectable = gf2::BitVec(4);
    a.patterns.push_back(entry);
    MiscorrectionProfile b = a;
    b.patterns[0].suspect = true;
    EXPECT_EQ(a, b);
}

TEST(ProfileIo, TrailingGarbageTokenRejected)
{
    // Older parsers silently ignored trailing tokens — exactly how
    // payload corruption hides. Anything but the "?" marker is an
    // explicit parse error now.
    const char *bad[] = {
        "k 4\n0 0111 x\n",
        "version 3\nk 4\n0 0111 garbage\n",
        "version 3\nk 4\n0 0111 ? extra\n",
    };
    for (const char *text : bad) {
        std::istringstream in(text);
        MiscorrectionProfile parsed;
        const ProfileParseStatus status = tryParseProfile(in, parsed);
        EXPECT_FALSE(status.ok) << text;
        EXPECT_NE(status.error.find("trailing token"),
                  std::string::npos)
            << status.error;
    }
}

using ProfileIoDeath = ::testing::Test;

TEST(ProfileIoDeath, FutureVersionIsFatalInBatchPath)
{
    EXPECT_DEATH(
        {
            std::istringstream in("version 99\nk 4\n0 0111\n");
            parseProfile(in);
        },
        "unsupported format version");
}

TEST(ProfileIoDeath, MissingHeaderIsFatal)
{
    EXPECT_DEATH(
        {
            std::istringstream in("0 0111\n");
            parseProfile(in);
        },
        "header");
}

TEST(ProfileIoDeath, WrongBitmapLengthIsFatal)
{
    EXPECT_DEATH(
        {
            std::istringstream in("k 4\n0 01110\n");
            parseProfile(in);
        },
        "bitmap");
}

TEST(ProfileIoDeath, ChargedBitOutOfRangeIsFatal)
{
    EXPECT_DEATH(
        {
            std::istringstream in("k 4\n7 0111\n");
            parseProfile(in);
        },
        "bad charged bit");
}

TEST(ProfileIoDeath, ChargedBitMarkedMiscorrectableIsFatal)
{
    EXPECT_DEATH(
        {
            std::istringstream in("k 4\n0 1111\n");
            parseProfile(in);
        },
        "marked miscorrectable");
}

TEST(ProfileIoDeath, NonBinaryBitmapIsFatal)
{
    EXPECT_DEATH(
        {
            std::istringstream in("k 4\n0 01x1\n");
            parseProfile(in);
        },
        "0/1");
}
