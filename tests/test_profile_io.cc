/**
 * @file
 * Tests for the miscorrection-profile text format used by the
 * tools/beer_solve pipeline.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "beer/profile.hh"
#include "ecc/hamming.hh"
#include "util/rng.hh"

using namespace beer;
using beer::ecc::randomSecCode;
using beer::util::Rng;

TEST(ProfileIo, RoundTrip)
{
    Rng rng(3);
    for (std::size_t k : {4u, 8u, 16u}) {
        const auto code = randomSecCode(k, rng);
        const auto profile =
            exhaustiveProfile(code, chargedPatternUnion(k, {1, 2}));
        std::istringstream in(serializeProfile(profile));
        EXPECT_EQ(parseProfile(in), profile) << "k=" << k;
    }
}

TEST(ProfileIo, ParsesCommentsAndBlankLines)
{
    std::istringstream in(
        "# header comment\n"
        "\n"
        "k 4\n"
        "0 0111  # trailing comment\n"
        "1,2 0000\n");
    const auto profile = parseProfile(in);
    EXPECT_EQ(profile.k, 4u);
    ASSERT_EQ(profile.patterns.size(), 2u);
    EXPECT_EQ(profile.patterns[0].pattern, TestPattern{0});
    EXPECT_EQ(profile.patterns[0].miscorrectable.toString(), "0111");
    EXPECT_EQ(profile.patterns[1].pattern, (TestPattern{1, 2}));
}

TEST(ProfileIo, SortsChargedBits)
{
    std::istringstream in("k 4\n3,1 0000\n");
    const auto profile = parseProfile(in);
    EXPECT_EQ(profile.patterns[0].pattern, (TestPattern{1, 3}));
}

using ProfileIoDeath = ::testing::Test;

TEST(ProfileIoDeath, MissingHeaderIsFatal)
{
    EXPECT_DEATH(
        {
            std::istringstream in("0 0111\n");
            parseProfile(in);
        },
        "header");
}

TEST(ProfileIoDeath, WrongBitmapLengthIsFatal)
{
    EXPECT_DEATH(
        {
            std::istringstream in("k 4\n0 01110\n");
            parseProfile(in);
        },
        "bitmap");
}

TEST(ProfileIoDeath, ChargedBitOutOfRangeIsFatal)
{
    EXPECT_DEATH(
        {
            std::istringstream in("k 4\n7 0111\n");
            parseProfile(in);
        },
        "bad charged bit");
}

TEST(ProfileIoDeath, ChargedBitMarkedMiscorrectableIsFatal)
{
    EXPECT_DEATH(
        {
            std::istringstream in("k 4\n0 1111\n");
            parseProfile(in);
        },
        "marked miscorrectable");
}

TEST(ProfileIoDeath, NonBinaryBitmapIsFatal)
{
    EXPECT_DEATH(
        {
            std::istringstream in("k 4\n0 01x1\n");
            parseProfile(in);
        },
        "0/1");
}
