/**
 * @file
 * Tests for the data-retention error model: monotonicity in time and
 * temperature, calibration to the paper's operating points, per-cell
 * determinism, and BER inversion.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dram/retention.hh"

using beer::dram::RetentionModel;

TEST(Retention, NoPauseNoErrors)
{
    RetentionModel model;
    EXPECT_DOUBLE_EQ(model.failProbability(0.0, 80.0), 0.0);
    EXPECT_FALSE(model.cellFails(1, 42, 0.0, 80.0));
}

TEST(Retention, MonotonicInPauseTime)
{
    RetentionModel model;
    double prev = 0.0;
    for (double pause : {10.0, 60.0, 300.0, 1200.0, 3600.0}) {
        const double ber = model.failProbability(pause, 80.0);
        EXPECT_GE(ber, prev);
        prev = ber;
    }
}

TEST(Retention, MonotonicInTemperature)
{
    RetentionModel model;
    double prev = 0.0;
    for (double temp : {30.0, 45.0, 60.0, 80.0, 95.0}) {
        const double ber = model.failProbability(600.0, temp);
        EXPECT_GT(ber, prev);
        prev = ber;
    }
}

TEST(Retention, CalibratedToPaperOperatingPoints)
{
    // Section 5.1.3: BER ~1e-7 at 2 min / 80C and ~1e-3 at 22 min /
    // 80C. The defaults are fit to those two points.
    RetentionModel model;
    const double ber_2min = model.failProbability(120.0, 80.0);
    const double ber_22min = model.failProbability(1320.0, 80.0);
    EXPECT_NEAR(std::log10(ber_2min), -7.0, 0.3);
    EXPECT_NEAR(std::log10(ber_22min), -3.0, 0.3);
}

TEST(Retention, TemperatureHalvingBehaviour)
{
    // Raising temperature by the halving constant doubles the
    // effective pause: failProbability(t, T) == failProbability(2t,
    // T - halving).
    RetentionModel model;
    const double a = model.failProbability(600.0, 80.0);
    const double b = model.failProbability(1200.0, 70.0);
    EXPECT_NEAR(a, b, 1e-12);
}

TEST(Retention, CellFailsDeterministic)
{
    RetentionModel model;
    for (std::uint64_t cell = 0; cell < 100; ++cell) {
        const bool first = model.cellFails(7, cell, 1800.0, 80.0);
        const bool second = model.cellFails(7, cell, 1800.0, 80.0);
        EXPECT_EQ(first, second);
    }
}

TEST(Retention, CellFailureIsThresholdInTime)
{
    // A cell that fails at pause t must also fail at any longer pause
    // (retention time is a fixed threshold).
    RetentionModel model;
    for (std::uint64_t cell = 0; cell < 200; ++cell) {
        bool failed = false;
        for (double pause : {60.0, 600.0, 3600.0, 36000.0, 360000.0}) {
            const bool fails = model.cellFails(3, cell, pause, 80.0);
            if (failed) {
                EXPECT_TRUE(fails);
            }
            failed = fails;
        }
    }
}

TEST(Retention, DifferentSeedsGiveDifferentCellMaps)
{
    RetentionModel model;
    const double pause = model.pauseForBitErrorRate(0.2, 80.0);
    int differing = 0;
    for (std::uint64_t cell = 0; cell < 500; ++cell) {
        if (model.cellFails(1, cell, pause, 80.0) !=
            model.cellFails(2, cell, pause, 80.0))
            ++differing;
    }
    EXPECT_GT(differing, 50);
}

TEST(Retention, PauseForBerInvertsFailProbability)
{
    RetentionModel model;
    for (double target : {1e-7, 1e-5, 1e-3, 1e-1}) {
        const double pause = model.pauseForBitErrorRate(target, 80.0);
        EXPECT_NEAR(std::log10(model.failProbability(pause, 80.0)),
                    std::log10(target), 1e-6);
    }
    // Different temperature round trip.
    const double pause45 = model.pauseForBitErrorRate(1e-4, 45.0);
    EXPECT_NEAR(std::log10(model.failProbability(pause45, 45.0)), -4.0,
                1e-6);
}

TEST(Retention, EmpiricalRateMatchesModel)
{
    // The fraction of cells failing at a pause approximates the model
    // BER (law of large numbers over deterministic per-cell draws).
    RetentionModel model;
    const double pause = model.pauseForBitErrorRate(0.05, 80.0);
    std::uint64_t failures = 0;
    const std::uint64_t cells = 200000;
    for (std::uint64_t cell = 0; cell < cells; ++cell)
        failures += model.cellFails(11, cell, pause, 80.0);
    EXPECT_NEAR((double)failures / (double)cells, 0.05, 0.005);
}
