/**
 * @file
 * Statistical sanity tests for util::Rng. Tolerances are loose enough
 * to be deterministic for the fixed seeds used.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hh"

using beer::util::Rng;

TEST(Rng, DeterministicForSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
    // All residues reachable.
    std::vector<int> seen(17, 0);
    for (int i = 0; i < 10000; ++i)
        ++seen[rng.below(17)];
    for (int count : seen)
        EXPECT_GT(count, 0);
}

TEST(Rng, UniformInRange)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(13);
    int hits = 0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR((double)hits / trials, 0.3, 0.01);

    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, BinomialMoments)
{
    Rng rng(17);
    // Small-mean regime (inversion path).
    {
        double sum = 0.0;
        const int trials = 20000;
        for (int i = 0; i < trials; ++i)
            sum += (double)rng.binomial(40, 0.1);
        EXPECT_NEAR(sum / trials, 4.0, 0.15);
    }
    // Large-mean regime (normal approximation path).
    {
        double sum = 0.0;
        const int trials = 20000;
        for (int i = 0; i < trials; ++i) {
            const auto sample = rng.binomial(10000, 0.25);
            EXPECT_LE(sample, 10000u);
            sum += (double)sample;
        }
        EXPECT_NEAR(sum / trials, 2500.0, 5.0);
    }
    EXPECT_EQ(rng.binomial(0, 0.5), 0u);
    EXPECT_EQ(rng.binomial(10, 0.0), 0u);
    EXPECT_EQ(rng.binomial(10, 1.0), 10u);
}

TEST(Rng, NormalMoments)
{
    Rng rng(19);
    double sum = 0.0;
    double sq = 0.0;
    const int trials = 200000;
    for (int i = 0; i < trials; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / trials, 0.0, 0.02);
    EXPECT_NEAR(sq / trials, 1.0, 0.02);
}

TEST(Rng, GeometricMean)
{
    Rng rng(23);
    const double p = 0.2;
    double sum = 0.0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        sum += (double)rng.geometric(p);
    // Mean of failures-before-success geometric is (1-p)/p = 4.
    EXPECT_NEAR(sum / trials, 4.0, 0.15);
    EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(29);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += parent.next() == child.next();
    EXPECT_LT(same, 2);
}
