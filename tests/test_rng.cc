/**
 * @file
 * Statistical sanity tests for util::Rng. Tolerances are loose enough
 * to be deterministic for the fixed seeds used.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "util/rng.hh"

using beer::util::Rng;

TEST(Rng, DeterministicForSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
    // All residues reachable.
    std::vector<int> seen(17, 0);
    for (int i = 0; i < 10000; ++i)
        ++seen[rng.below(17)];
    for (int count : seen)
        EXPECT_GT(count, 0);
}

TEST(Rng, UniformInRange)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(13);
    int hits = 0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR((double)hits / trials, 0.3, 0.01);

    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, BinomialMoments)
{
    Rng rng(17);
    // Small-mean regime (inversion path).
    {
        double sum = 0.0;
        const int trials = 20000;
        for (int i = 0; i < trials; ++i)
            sum += (double)rng.binomial(40, 0.1);
        EXPECT_NEAR(sum / trials, 4.0, 0.15);
    }
    // Large-mean regime (normal approximation path).
    {
        double sum = 0.0;
        const int trials = 20000;
        for (int i = 0; i < trials; ++i) {
            const auto sample = rng.binomial(10000, 0.25);
            EXPECT_LE(sample, 10000u);
            sum += (double)sample;
        }
        EXPECT_NEAR(sum / trials, 2500.0, 5.0);
    }
    EXPECT_EQ(rng.binomial(0, 0.5), 0u);
    EXPECT_EQ(rng.binomial(10, 0.0), 0u);
    EXPECT_EQ(rng.binomial(10, 1.0), 10u);
}

TEST(Rng, NormalMoments)
{
    Rng rng(19);
    double sum = 0.0;
    double sq = 0.0;
    const int trials = 200000;
    for (int i = 0; i < trials; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / trials, 0.0, 0.02);
    EXPECT_NEAR(sq / trials, 1.0, 0.02);
}

TEST(Rng, GeometricMean)
{
    Rng rng(23);
    const double p = 0.2;
    double sum = 0.0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        sum += (double)rng.geometric(p);
    // Mean of failures-before-success geometric is (1-p)/p = 4.
    EXPECT_NEAR(sum / trials, 4.0, 0.15);
    EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(29);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += parent.next() == child.next();
    EXPECT_LT(same, 2);
}

TEST(BernoulliMask, DegenerateRatesDrawNothing)
{
    beer::util::Rng rng(1);
    beer::util::Rng untouched(1);
    const beer::util::BernoulliMask never(0.0);
    const beer::util::BernoulliMask always(1.0);
    EXPECT_EQ(never.draw(rng), 0u);
    EXPECT_EQ(always.draw(rng), ~(std::uint64_t)0);
    // Neither consumed the Rng stream.
    EXPECT_EQ(rng.next(), untouched.next());
}

TEST(BernoulliMask, ExactPowerOfTwoRates)
{
    // p = 0.5 has a one-digit expansion: the mask is exactly one raw
    // next() draw's complement-resolved bits; the mean must sit at 32
    // of 64 lanes over many draws.
    beer::util::Rng rng(17);
    const beer::util::BernoulliMask half(0.5);
    std::uint64_t ones = 0;
    const std::size_t draws = 20000;
    for (std::size_t i = 0; i < draws; ++i)
        ones += (std::uint64_t)__builtin_popcountll(half.draw(rng));
    const double total = 64.0 * draws;
    const double sigma = std::sqrt(total * 0.25);
    EXPECT_NEAR((double)ones, total * 0.5, 5.0 * sigma);
}

TEST(BernoulliMask, LaneBitsMatchTheRate)
{
    // Every lane is an independent Bernoulli(p) trial: the aggregate
    // count and each individual lane's count must track p.
    const double p = 0.3;
    beer::util::Rng rng(23);
    const beer::util::BernoulliMask mask(p);
    const std::size_t draws = 30000;
    std::array<std::uint64_t, 64> lane_ones{};
    std::uint64_t ones = 0;
    for (std::size_t i = 0; i < draws; ++i) {
        const std::uint64_t m = mask.draw(rng);
        ones += (std::uint64_t)__builtin_popcountll(m);
        for (std::size_t lane = 0; lane < 64; ++lane)
            lane_ones[lane] += (m >> lane) & 1;
    }
    const double total = 64.0 * draws;
    EXPECT_NEAR((double)ones, total * p,
                5.0 * std::sqrt(total * p * (1.0 - p)));
    const double lane_sigma = std::sqrt(draws * p * (1.0 - p));
    for (std::size_t lane = 0; lane < 64; ++lane)
        EXPECT_NEAR((double)lane_ones[lane], draws * p,
                    6.0 * lane_sigma)
            << "lane " << lane;
}
