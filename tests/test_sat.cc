/**
 * @file
 * Tests for the CDCL SAT solver: hand-written formulas, reference
 * comparison against a brute-force evaluator on random CNFs, UNSAT
 * families (pigeonhole), assumptions, incremental use, and model
 * enumeration.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sat/dimacs.hh"
#include "sat/solver.hh"
#include "util/rng.hh"

using namespace beer::sat;
using beer::util::Rng;

namespace
{

/** Brute-force satisfiability of a clause list over n variables. */
bool
bruteForceSat(std::size_t num_vars,
              const std::vector<std::vector<Lit>> &clauses)
{
    for (std::uint64_t assign = 0; assign < (1ULL << num_vars);
         ++assign) {
        bool all_satisfied = true;
        for (const auto &clause : clauses) {
            bool satisfied = false;
            for (Lit l : clause) {
                const bool value = (assign >> l.var()) & 1;
                if (value != l.sign()) {
                    satisfied = true;
                    break;
                }
            }
            if (!satisfied) {
                all_satisfied = false;
                break;
            }
        }
        if (all_satisfied)
            return true;
    }
    return false;
}

/** Count satisfying assignments by brute force. */
std::size_t
bruteForceCount(std::size_t num_vars,
                const std::vector<std::vector<Lit>> &clauses)
{
    std::size_t count = 0;
    for (std::uint64_t assign = 0; assign < (1ULL << num_vars);
         ++assign) {
        bool all_satisfied = true;
        for (const auto &clause : clauses) {
            bool satisfied = false;
            for (Lit l : clause) {
                const bool value = (assign >> l.var()) & 1;
                if (value != l.sign()) {
                    satisfied = true;
                    break;
                }
            }
            if (!satisfied) {
                all_satisfied = false;
                break;
            }
        }
        count += all_satisfied;
    }
    return count;
}

/** Check the solver's model against the clauses. */
void
expectModelSatisfies(const Solver &solver,
                     const std::vector<std::vector<Lit>> &clauses)
{
    for (const auto &clause : clauses) {
        bool satisfied = false;
        for (Lit l : clause)
            if (solver.modelValue(l.var()) != l.sign())
                satisfied = true;
        EXPECT_TRUE(satisfied);
    }
}

} // anonymous namespace

TEST(Sat, LitBasics)
{
    const Lit a = mkLit(3);
    EXPECT_EQ(a.var(), 3);
    EXPECT_FALSE(a.sign());
    EXPECT_TRUE((~a).sign());
    EXPECT_EQ((~~a), a);
    EXPECT_TRUE(Lit().isUndef());
}

TEST(Sat, TrivialSat)
{
    Solver s;
    const Var x = s.newVar();
    s.addClause(mkLit(x));
    EXPECT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(x));
}

TEST(Sat, TrivialUnsat)
{
    Solver s;
    const Var x = s.newVar();
    s.addClause(mkLit(x));
    EXPECT_FALSE(s.addClause(mkLit(x, true)));
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
    EXPECT_TRUE(s.isUnsat());
}

TEST(Sat, EmptyFormulaIsSat)
{
    Solver s;
    s.newVar();
    s.newVar();
    EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(Sat, UnitPropagationChain)
{
    // x0; x0 -> x1; x1 -> x2; ...; x8 -> x9.
    Solver s;
    std::vector<Var> vars;
    for (int i = 0; i < 10; ++i)
        vars.push_back(s.newVar());
    s.addClause(mkLit(vars[0]));
    for (int i = 0; i + 1 < 10; ++i)
        s.addClause(mkLit(vars[i], true), mkLit(vars[i + 1]));
    EXPECT_EQ(s.solve(), SolveResult::Sat);
    for (Var v : vars)
        EXPECT_TRUE(s.modelValue(v));
}

TEST(Sat, XorChainSat)
{
    // x0 xor x1 = 1, x1 xor x2 = 1, x0 = 1 => x1 = 0, x2 = 1.
    Solver s;
    const Var x0 = s.newVar();
    const Var x1 = s.newVar();
    const Var x2 = s.newVar();
    auto add_xor_one = [&](Var a, Var b) {
        s.addClause(mkLit(a), mkLit(b));
        s.addClause(mkLit(a, true), mkLit(b, true));
    };
    add_xor_one(x0, x1);
    add_xor_one(x1, x2);
    s.addClause(mkLit(x0));
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(x0));
    EXPECT_FALSE(s.modelValue(x1));
    EXPECT_TRUE(s.modelValue(x2));
}

TEST(Sat, PigeonholeUnsat)
{
    // PHP(n+1, n): n+1 pigeons into n holes — classically UNSAT and
    // exponential for resolution at scale; use a small instance.
    const int holes = 4;
    const int pigeons = 5;
    Solver s;
    std::vector<std::vector<Var>> var(pigeons, std::vector<Var>(holes));
    for (int p = 0; p < pigeons; ++p)
        for (int h = 0; h < holes; ++h)
            var[p][h] = s.newVar();
    for (int p = 0; p < pigeons; ++p) {
        std::vector<Lit> clause;
        for (int h = 0; h < holes; ++h)
            clause.push_back(mkLit(var[p][h]));
        s.addClause(clause);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.addClause(mkLit(var[p1][h], true),
                            mkLit(var[p2][h], true));
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
}

TEST(Sat, RandomCnfMatchesBruteForce)
{
    Rng rng(101);
    int sat_seen = 0;
    int unsat_seen = 0;
    for (int round = 0; round < 200; ++round) {
        const std::size_t num_vars = 4 + rng.below(9); // 4..12
        // ~4.3 clauses/var is near the 3-SAT phase transition.
        const std::size_t num_clauses = (std::size_t)(num_vars * 4.3);
        std::vector<std::vector<Lit>> clauses;
        for (std::size_t i = 0; i < num_clauses; ++i) {
            std::vector<Lit> clause;
            for (int j = 0; j < 3; ++j)
                clause.push_back(mkLit((Var)rng.below(num_vars),
                                       rng.bernoulli(0.5)));
            clauses.push_back(clause);
        }

        Solver s;
        for (std::size_t v = 0; v < num_vars; ++v)
            s.newVar();
        for (const auto &clause : clauses)
            s.addClause(clause);

        const bool expected = bruteForceSat(num_vars, clauses);
        const SolveResult got = s.solve();
        ASSERT_EQ(got, expected ? SolveResult::Sat : SolveResult::Unsat)
            << "round " << round;
        if (expected) {
            ++sat_seen;
            expectModelSatisfies(s, clauses);
        } else {
            ++unsat_seen;
        }
    }
    // The mix must exercise both branches.
    EXPECT_GT(sat_seen, 20);
    EXPECT_GT(unsat_seen, 20);
}

TEST(Sat, Assumptions)
{
    Solver s;
    const Var x = s.newVar();
    const Var y = s.newVar();
    s.addClause(mkLit(x), mkLit(y)); // x or y

    EXPECT_EQ(s.solve({mkLit(x, true)}), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(y));

    EXPECT_EQ(s.solve({mkLit(y, true)}), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(x));

    EXPECT_EQ(s.solve({mkLit(x, true), mkLit(y, true)}),
              SolveResult::Unsat);

    // The formula itself is still satisfiable afterwards.
    EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(Sat, IncrementalClauseAddition)
{
    Solver s;
    const Var x = s.newVar();
    const Var y = s.newVar();
    s.addClause(mkLit(x), mkLit(y));
    ASSERT_EQ(s.solve(), SolveResult::Sat);

    // Block the found model, resolve, repeat: enumerates all 3 models.
    int models = 0;
    while (s.solve() == SolveResult::Sat) {
        ++models;
        ASSERT_LE(models, 3);
        std::vector<Lit> blocking;
        blocking.push_back(mkLit(x, s.modelValue(x)));
        blocking.push_back(mkLit(y, s.modelValue(y)));
        s.addClause(blocking);
    }
    EXPECT_EQ(models, 3);
}

TEST(Sat, ModelEnumerationMatchesBruteForceCount)
{
    Rng rng(103);
    for (int round = 0; round < 50; ++round) {
        const std::size_t num_vars = 3 + rng.below(6); // 3..8
        const std::size_t num_clauses = num_vars * 2;
        std::vector<std::vector<Lit>> clauses;
        for (std::size_t i = 0; i < num_clauses; ++i) {
            std::vector<Lit> clause;
            for (int j = 0; j < 3; ++j)
                clause.push_back(mkLit((Var)rng.below(num_vars),
                                       rng.bernoulli(0.5)));
            clauses.push_back(clause);
        }

        Solver s;
        for (std::size_t v = 0; v < num_vars; ++v)
            s.newVar();
        for (const auto &clause : clauses)
            s.addClause(clause);

        std::size_t models = 0;
        while (s.solve() == SolveResult::Sat) {
            ++models;
            ASSERT_LE(models, (std::size_t)1 << num_vars);
            std::vector<Lit> blocking;
            for (std::size_t v = 0; v < num_vars; ++v)
                blocking.push_back(mkLit((Var)v, s.modelValue((Var)v)));
            s.addClause(blocking);
        }
        EXPECT_EQ(models, bruteForceCount(num_vars, clauses))
            << "round " << round;
    }
}

TEST(Sat, GroupClausesBindOnlyWhileLive)
{
    Solver s;
    const Var x = s.newVar();
    const GroupId g = s.newGroup();
    s.addClause({mkLit(x, true)}, g); // group forces !x

    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_FALSE(s.modelValue(x));

    // A permanent clause conflicting with the live group: UNSAT under
    // the group, but the formula itself is fine.
    s.addClause(mkLit(x));
    EXPECT_EQ(s.solve(), SolveResult::Unsat);
    EXPECT_FALSE(s.isUnsat());

    s.retireGroup(g);
    EXPECT_FALSE(s.groupLive(g));
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(x));
}

TEST(Sat, RetireGroupIsIdempotent)
{
    Solver s;
    const Var x = s.newVar();
    const GroupId g = s.newGroup();
    s.addClause({mkLit(x)}, g);
    s.retireGroup(g);
    s.retireGroup(g);
    EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(Sat, ReleaseAfterRetireWithModelOnTrail)
{
    // releaseGroup on an already-retired group, with a model still on
    // the trail from the preceding Sat call, must reclaim cleanly
    // (regression: the root-simplification sweep once assumed level 0).
    Solver s;
    const Var x = s.newVar();
    const Var y = s.newVar();
    s.addClause(mkLit(x), mkLit(y));
    const GroupId g = s.newGroup();
    s.addClause({mkLit(x, true)}, g);
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    s.retireGroup(g);
    ASSERT_EQ(s.solve(), SolveResult::Sat); // model left on the trail
    s.releaseGroup(g);
    s.releaseGroup(g); // and twice
    EXPECT_EQ(s.solve(), SolveResult::Sat);
}

TEST(Sat, ReleasedBlockingClausesUnblockModels)
{
    // Enumerate all models of a free 2-variable formula by blocking in
    // a group; releasing the group must make every model reachable
    // again, which is exactly the retraction the incremental BEER
    // enumeration performs between measurement rounds.
    Solver s;
    const Var x = s.newVar();
    const Var y = s.newVar();
    s.addClause(mkLit(x), mkLit(y), mkLit(x)); // keep both vars used

    auto enumerate = [&](GroupId g) {
        int models = 0;
        while (s.solve() == SolveResult::Sat) {
            ++models;
            EXPECT_LE(models, 3);
            if (models > 3)
                break;
            std::vector<Lit> blocking;
            blocking.push_back(mkLit(x, s.modelValue(x)));
            blocking.push_back(mkLit(y, s.modelValue(y)));
            s.addClause(blocking, g);
        }
        return models;
    };

    const GroupId g1 = s.newGroup();
    EXPECT_EQ(enumerate(g1), 3);
    EXPECT_FALSE(s.isUnsat()); // only blocked, not unsatisfiable

    s.releaseGroup(g1);
    EXPECT_GE(s.stats().releasedClauses, 3u);

    const GroupId g2 = s.newGroup();
    EXPECT_EQ(enumerate(g2), 3);
}

TEST(Sat, GroupsComposeWithAssumptions)
{
    Solver s;
    const Var x = s.newVar();
    const Var y = s.newVar();
    const GroupId g = s.newGroup();
    s.addClause({mkLit(x, true), mkLit(y)}, g); // group: x -> y

    EXPECT_EQ(s.solve({mkLit(x)}), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(y));
    EXPECT_EQ(s.solve({mkLit(x), mkLit(y, true)}), SolveResult::Unsat);

    s.retireGroup(g);
    EXPECT_EQ(s.solve({mkLit(x), mkLit(y, true)}), SolveResult::Sat);
}

TEST(Sat, GarbageCollectionPreservesSemantics)
{
    // Churn many release cycles so the arena collector runs, and keep
    // checking satisfiability against an unchanging permanent core.
    Solver s;
    std::vector<Var> vars;
    for (int i = 0; i < 30; ++i)
        vars.push_back(s.newVar());
    Rng rng(211);
    for (int i = 0; i < 60; ++i) {
        std::vector<Lit> clause;
        for (int j = 0; j < 3; ++j)
            clause.push_back(
                mkLit(vars[rng.below(30)], rng.bernoulli(0.5)));
        s.addClause(clause);
    }
    ASSERT_EQ(s.solve(), SolveResult::Sat);

    for (int cycle = 0; cycle < 40; ++cycle) {
        const GroupId g = s.newGroup();
        for (int i = 0; i < 20; ++i) {
            std::vector<Lit> clause;
            for (int j = 0; j < 4; ++j)
                clause.push_back(
                    mkLit(vars[rng.below(30)], rng.bernoulli(0.5)));
            s.addClause(clause, g);
        }
        s.solve();
        s.releaseGroup(g);
        ASSERT_EQ(s.solve(), SolveResult::Sat) << "cycle " << cycle;
    }
    EXPECT_GT(s.stats().garbageCollections, 0u);
}

TEST(Sat, ProblemClausesExportRoundTrips)
{
    Solver s;
    const Var x = s.newVar();
    const Var y = s.newVar();
    const Var z = s.newVar();
    s.addClause(mkLit(x));                       // root unit
    s.addClause(mkLit(y), mkLit(z));             // binary
    s.addClause(mkLit(x, true), mkLit(y, true), mkLit(z)); // ternary

    const auto clauses = s.problemClauses();
    // The unit appears via the root trail; the two stored clauses as-is
    // (the ternary may have been simplified by the root-true literal).
    Solver copy;
    copy.newVar();
    copy.newVar();
    copy.newVar();
    for (const auto &clause : clauses)
        copy.addClause(clause);
    ASSERT_EQ(copy.solve(), SolveResult::Sat);
    EXPECT_TRUE(copy.modelValue(x));
}

TEST(Sat, ConflictLimitReturnsUnknown)
{
    // A pigeonhole instance large enough to need > 1 conflict.
    const int holes = 6;
    const int pigeons = 7;
    Solver s;
    std::vector<std::vector<Var>> var(pigeons, std::vector<Var>(holes));
    for (int p = 0; p < pigeons; ++p)
        for (int h = 0; h < holes; ++h)
            var[p][h] = s.newVar();
    for (int p = 0; p < pigeons; ++p) {
        std::vector<Lit> clause;
        for (int h = 0; h < holes; ++h)
            clause.push_back(mkLit(var[p][h]));
        s.addClause(clause);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.addClause(mkLit(var[p1][h], true),
                            mkLit(var[p2][h], true));
    s.setConflictLimit(3);
    EXPECT_EQ(s.solve(), SolveResult::Unknown);
}

TEST(Sat, TautologyAndDuplicatesIgnored)
{
    Solver s;
    const Var x = s.newVar();
    const Var y = s.newVar();
    EXPECT_TRUE(s.addClause(mkLit(x), mkLit(x, true))); // tautology
    EXPECT_TRUE(s.addClause(mkLit(y), mkLit(y), mkLit(y)));
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(y));
}

TEST(Sat, StatsPopulated)
{
    Solver s;
    std::vector<Var> vars;
    for (int i = 0; i < 20; ++i)
        vars.push_back(s.newVar());
    Rng rng(107);
    for (int i = 0; i < 80; ++i) {
        std::vector<Lit> clause;
        for (int j = 0; j < 3; ++j)
            clause.push_back(mkLit(vars[rng.below(20)],
                                   rng.bernoulli(0.5)));
        s.addClause(clause);
    }
    s.solve();
    EXPECT_GT(s.stats().propagations, 0u);
    EXPECT_GT(s.stats().arenaBytes, 0u);
}

TEST(Dimacs, ParseAndPrintRoundTrip)
{
    const std::string text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
    std::istringstream in(text);
    const Cnf cnf = parseDimacs(in);
    EXPECT_EQ(cnf.numVars, 3u);
    ASSERT_EQ(cnf.clauses.size(), 2u);
    EXPECT_EQ(cnf.clauses[0][0], mkLit(0));
    EXPECT_EQ(cnf.clauses[0][1], mkLit(1, true));

    std::ostringstream out;
    printDimacs(cnf, out);
    std::istringstream in2(out.str());
    const Cnf cnf2 = parseDimacs(in2);
    EXPECT_EQ(cnf2.numVars, cnf.numVars);
    EXPECT_EQ(cnf2.clauses.size(), cnf.clauses.size());
}

TEST(Dimacs, LoadIntoSolver)
{
    std::istringstream in("p cnf 2 2\n1 0\n-1 2 0\n");
    const Cnf cnf = parseDimacs(in);
    Solver s;
    loadCnf(cnf, s);
    ASSERT_EQ(s.solve(), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(0));
    EXPECT_TRUE(s.modelValue(1));
}
