/**
 * @file
 * Tests for the SEC-DED (rank-level ECC) substrate: distance-4
 * behaviour — every single error corrected, every double error
 * detected, never miscorrected.
 */

#include <gtest/gtest.h>

#include "ecc/secded.hh"
#include "util/rng.hh"

using namespace beer::ecc;
using beer::gf2::BitVec;
using beer::util::Rng;

TEST(SecDed, ParityBitCounts)
{
    // Known SEC-DED parameters: (72,64) Hsiao code uses 8 parity bits.
    EXPECT_EQ(SecDedCode::parityBitsFor(64), 8u);
    EXPECT_EQ(SecDedCode::parityBitsFor(32), 7u);
    EXPECT_EQ(SecDedCode::parityBitsFor(16), 6u);
    EXPECT_EQ(SecDedCode::parityBitsFor(8), 5u);
    EXPECT_EQ(SecDedCode::parityBitsFor(4), 4u);
}

TEST(SecDed, MinimalCodesAreValid)
{
    for (std::size_t k : {4u, 8u, 16u, 26u, 32u, 64u}) {
        const SecDedCode code = SecDedCode::minimal(k);
        EXPECT_EQ(code.k(), k);
        EXPECT_TRUE(SecDedCode::isValidSecDed(code.code()));
    }
}

TEST(SecDed, RandomCodesAreValidAndDiffer)
{
    Rng rng(3);
    const SecDedCode a = SecDedCode::random(16, rng);
    const SecDedCode b = SecDedCode::random(16, rng);
    EXPECT_TRUE(SecDedCode::isValidSecDed(a.code()));
    EXPECT_TRUE(SecDedCode::isValidSecDed(b.code()));
    EXPECT_FALSE(a.code() == b.code());
}

TEST(SecDed, ExplicitParityLengthens)
{
    Rng rng(5);
    const SecDedCode padded = SecDedCode::randomWithParity(16, 8, rng);
    EXPECT_EQ(padded.n(), 24u);
    EXPECT_TRUE(SecDedCode::isValidSecDed(padded.code()));
}

TEST(SecDed, CleanDecode)
{
    Rng rng(7);
    const SecDedCode code = SecDedCode::random(16, rng);
    BitVec data(16);
    for (std::size_t i = 0; i < 16; ++i)
        data.set(i, rng.bernoulli(0.5));
    const auto result = code.decode(code.encode(data));
    EXPECT_EQ(result.outcome, SecDedOutcome::Clean);
    EXPECT_EQ(result.dataword, data);
}

TEST(SecDed, AllSingleErrorsCorrected)
{
    Rng rng(9);
    for (std::size_t k : {8u, 16u, 26u}) {
        const SecDedCode code = SecDedCode::random(k, rng);
        BitVec data(k);
        for (std::size_t i = 0; i < k; ++i)
            data.set(i, rng.bernoulli(0.5));
        const BitVec codeword = code.encode(data);
        for (std::size_t pos = 0; pos < code.n(); ++pos) {
            BitVec received = codeword;
            received.flip(pos);
            const auto result = code.decode(received);
            EXPECT_EQ(result.outcome, SecDedOutcome::Corrected);
            EXPECT_EQ(result.correctedBit, pos);
            EXPECT_EQ(result.dataword, data);
        }
    }
}

TEST(SecDed, AllDoubleErrorsDetectedNeverMiscorrected)
{
    // The distance-4 guarantee that a *standalone* SEC-DED provides —
    // and that an inner on-die SEC destroys (see test_two_level.cc).
    Rng rng(11);
    const SecDedCode code = SecDedCode::random(16, rng);
    const BitVec data(16);
    const BitVec codeword = code.encode(data);
    for (std::size_t a = 0; a < code.n(); ++a) {
        for (std::size_t b = a + 1; b < code.n(); ++b) {
            BitVec received = codeword;
            received.flip(a);
            received.flip(b);
            const auto result = code.decode(received);
            EXPECT_EQ(result.outcome, SecDedOutcome::Detected)
                << a << "," << b;
        }
    }
}

TEST(SecDed, TripleErrorsCanEscape)
{
    // Distance 4 means some triple errors alias to single-error
    // syndromes and get "corrected" into wrong data: count them.
    Rng rng(13);
    const SecDedCode code = SecDedCode::random(8, rng);
    const BitVec data(8);
    const BitVec codeword = code.encode(data);
    std::size_t silent = 0;
    std::size_t total = 0;
    for (std::size_t a = 0; a < code.n(); ++a) {
        for (std::size_t b = a + 1; b < code.n(); ++b) {
            for (std::size_t c = b + 1; c < code.n(); ++c) {
                BitVec received = codeword;
                received.flip(a);
                received.flip(b);
                received.flip(c);
                const auto result = code.decode(received);
                ++total;
                if (result.outcome != SecDedOutcome::Detected &&
                    result.dataword != data)
                    ++silent;
            }
        }
    }
    EXPECT_GT(silent, 0u);
    EXPECT_LT(silent, total);
}

TEST(SecDed, RejectsNonSecDedMatrices)
{
    // An even-weight data column breaks the odd-weight invariant.
    const LinearCode bad(beer::gf2::Matrix{
        {1, 1},
        {1, 0},
        {0, 1},
    });
    // Column 0 has weight 2 (even): not SEC-DED.
    EXPECT_FALSE(SecDedCode::isValidSecDed(bad));
}
