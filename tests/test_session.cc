/**
 * @file
 * Tests for the staged beer::Session recovery API: the adaptive
 * early-exit schedule must recover the identical unique ECC function
 * as the legacy full sweep on every vendor configuration while issuing
 * strictly fewer pattern measurements, the explicit
 * measure/solve/escalate stages must compose, and the legacy
 * recoverEccFunction() wrapper must keep its behavior.
 */

#include <gtest/gtest.h>

#include "beer/beer.hh"
#include "beer/session.hh"
#include "dram/chip.hh"
#include "ecc/code_equiv.hh"

using namespace beer;
using beer::dram::ChipConfig;
using beer::dram::makeVendorConfig;
using beer::dram::SimulatedChip;

namespace
{

ChipConfig
testChipConfig(char vendor, std::size_t k, std::uint64_t seed)
{
    ChipConfig config = makeVendorConfig(vendor, k, seed);
    config.map.rows = 64;
    config.iidErrors = true;
    return config;
}

MeasureConfig
fastMeasure(const SimulatedChip &chip)
{
    MeasureConfig measure;
    measure.pausesSeconds.clear();
    for (double ber : {0.05, 0.15, 0.3})
        measure.pausesSeconds.push_back(
            chip.retentionModel().pauseForBitErrorRate(ber, 80.0));
    measure.repeatsPerPause = 25;
    measure.thresholdProbability = 1e-4;
    return measure;
}

} // anonymous namespace

TEST(Session, AdaptiveEarlyExitMatchesFullSweep)
{
    for (char vendor : {'A', 'B', 'C'}) {
        const std::uint64_t seed = 500 + (std::uint64_t)vendor;

        // Legacy full sweep.
        SimulatedChip full_chip(testChipConfig(vendor, 16, seed));
        RecoveryOptions options;
        options.measure = fastMeasure(full_chip);
        const RecoveryReport full =
            recoverEccFunction(full_chip, options);
        ASSERT_TRUE(full.succeeded()) << "vendor " << vendor;

        // Adaptive session on an identically manufactured chip.
        SimulatedChip chip(testChipConfig(vendor, 16, seed));
        SessionConfig config;
        config.measure = fastMeasure(chip);
        config.wordsUnderTest = dram::trueCellWords(chip);
        Session session(chip, config);
        const RecoveryReport adaptive = session.run();

        ASSERT_TRUE(adaptive.succeeded()) << "vendor " << vendor;
        EXPECT_TRUE(ecc::equivalent(adaptive.recoveredCode(),
                                    full.recoveredCode()))
            << "vendor " << vendor;
        EXPECT_TRUE(ecc::equivalent(adaptive.recoveredCode(),
                                    chip.groundTruthCode()))
            << "vendor " << vendor;

        // The point of the adaptive schedule: provably-unique solves
        // end the measurement early, so strictly fewer (pattern,
        // pause, repeat) experiments run than in the full sweep.
        EXPECT_LT(adaptive.stats.patternMeasurements,
                  full.stats.patternMeasurements)
            << "vendor " << vendor;
        EXPECT_LT(adaptive.counts.patterns.size(),
                  full.counts.patterns.size())
            << "vendor " << vendor;
    }
}

TEST(Session, StagedApiComposes)
{
    SimulatedChip chip(testChipConfig('A', 8, 901));
    SessionConfig config;
    config.measure = fastMeasure(chip);
    config.wordsUnderTest = dram::trueCellWords(chip);
    config.patternsPerRound = 1;
    Session session(chip, config);

    // Drive the stages by hand instead of run().
    std::size_t rounds = 0;
    while (!session.finished()) {
        if (session.measureRound()) {
            ++rounds;
            if (session.solve().unique())
                break;
            continue;
        }
        if (!session.escalate())
            break;
    }

    const RecoveryReport report = session.report();
    ASSERT_TRUE(report.succeeded());
    EXPECT_TRUE(ecc::equivalent(report.recoveredCode(),
                                chip.groundTruthCode()));
    EXPECT_EQ(report.stats.measureRounds, rounds);
    EXPECT_EQ(report.counts.patterns.size(), rounds);
    EXPECT_GT(report.stats.solveCalls, 0u);
    EXPECT_GT(report.stats.sat.decisions, 0u);
    EXPECT_GE(report.stats.measureSeconds, 0.0);
}

TEST(Session, ProgressCallbackObservesStages)
{
    SimulatedChip chip(testChipConfig('A', 8, 902));
    SessionConfig config;
    config.measure = fastMeasure(chip);
    config.wordsUnderTest = dram::trueCellWords(chip);

    std::vector<SessionStage> stages;
    std::size_t final_patterns = 0;
    config.onProgress = [&](const SessionProgress &progress) {
        stages.push_back(progress.stage);
        final_patterns = progress.patternsMeasured;
    };

    Session session(chip, config);
    const RecoveryReport report = session.run();
    ASSERT_TRUE(report.succeeded());

    ASSERT_FALSE(stages.empty());
    EXPECT_EQ(stages.front(), SessionStage::Measure);
    EXPECT_EQ(stages.back(), SessionStage::Done);
    EXPECT_NE(std::find(stages.begin(), stages.end(),
                        SessionStage::Solve),
              stages.end());
    EXPECT_EQ(final_patterns, report.counts.patterns.size());
}

TEST(Session, NonAdaptiveReproducesLegacyPipeline)
{
    // recoverEccFunction() is a wrapper over a non-adaptive session;
    // both paths must produce identical reports on identical chips.
    SimulatedChip chip_a(testChipConfig('C', 16, 903));
    SimulatedChip chip_b(testChipConfig('C', 16, 903));

    RecoveryOptions options;
    options.measure = fastMeasure(chip_a);
    const RecoveryReport legacy = recoverEccFunction(chip_a, options);

    SessionConfig config;
    config.measure = options.measure;
    config.adaptiveEarlyExit = false;
    config.wordsUnderTest = dram::trueCellWords(chip_b);
    Session session(chip_b, config);
    const RecoveryReport staged = session.run();

    ASSERT_TRUE(legacy.succeeded());
    ASSERT_TRUE(staged.succeeded());
    EXPECT_EQ(legacy.counts.patterns, staged.counts.patterns);
    EXPECT_EQ(legacy.counts.errorCounts, staged.counts.errorCounts);
    EXPECT_EQ(legacy.profile, staged.profile);
    EXPECT_TRUE(legacy.solve.solutions == staged.solve.solutions);
    EXPECT_EQ(legacy.usedTwoCharged, staged.usedTwoCharged);
}

TEST(Session, EscalatesForAmbiguousOneChargedProfiles)
{
    // An 8-bit dataword uses a (12,8) code shortened from (15,11):
    // depending on the secret function, 1-CHARGED profiles may admit
    // several candidates, which escalation must resolve. Run several
    // seeds and require every recovery to succeed; at least the
    // mechanism must engage (counts include 2-CHARGED patterns when it
    // does).
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        SimulatedChip chip(testChipConfig('A', 8, 910 + seed));
        SessionConfig config;
        config.measure = fastMeasure(chip);
        config.wordsUnderTest = dram::trueCellWords(chip);
        Session session(chip, config);
        const RecoveryReport report = session.run();
        ASSERT_TRUE(report.succeeded()) << "seed " << seed;
        EXPECT_TRUE(ecc::equivalent(report.recoveredCode(),
                                    chip.groundTruthCode()))
            << "seed " << seed;
        if (report.usedTwoCharged) {
            EXPECT_GT(report.counts.patterns.size(), 8u);
        }
    }
}

TEST(Session, IncrementalSolveMatchesFromScratchSessions)
{
    // The persistent solve context must not change WHAT is recovered,
    // only how much solver work each round costs.
    for (char vendor : {'A', 'B', 'C'}) {
        SimulatedChip chip_inc(testChipConfig(vendor, 16, 940));
        SessionConfig config;
        config.measure = fastMeasure(chip_inc);
        config.wordsUnderTest = dram::trueCellWords(chip_inc);
        config.incrementalSolve = true;
        Session incremental(chip_inc, config);
        const RecoveryReport inc = incremental.run();

        SimulatedChip chip_scr(testChipConfig(vendor, 16, 940));
        config.wordsUnderTest = dram::trueCellWords(chip_scr);
        config.incrementalSolve = false;
        Session scratch(chip_scr, config);
        const RecoveryReport scr = scratch.run();

        ASSERT_TRUE(inc.succeeded()) << "vendor " << vendor;
        ASSERT_TRUE(scr.succeeded()) << "vendor " << vendor;
        EXPECT_TRUE(ecc::equivalent(inc.recoveredCode(),
                                    chip_inc.groundTruthCode()))
            << "vendor " << vendor;
        EXPECT_TRUE(ecc::equivalent(inc.recoveredCode(),
                                    scr.recoveredCode()))
            << "vendor " << vendor;
    }
}

TEST(Session, SolveStatsSplitEncodeAndSearch)
{
    SimulatedChip chip(testChipConfig('B', 16, 950));
    SessionConfig config;
    config.measure = fastMeasure(chip);
    config.wordsUnderTest = dram::trueCellWords(chip);
    Session session(chip, config);
    const RecoveryReport report = session.run();
    ASSERT_TRUE(report.succeeded());

    const SessionStats &stats = report.stats;
    ASSERT_EQ(stats.solveRounds.size(), stats.solveCalls);
    ASSERT_GT(stats.solveRounds.size(), 0u);

    // The split must tile the total, and the per-round entries must
    // sum to the accumulated split.
    double encode = 0.0;
    double search = 0.0;
    std::uint64_t clauses = 0;
    std::size_t patterns_encoded = 0;
    for (const SolveRoundStats &round : stats.solveRounds) {
        encode += round.encodeSeconds;
        search += round.searchSeconds;
        clauses += round.clausesAdded;
        patterns_encoded += round.patternsEncoded;
    }
    EXPECT_DOUBLE_EQ(encode, stats.solveEncodeSeconds);
    EXPECT_DOUBLE_EQ(search, stats.solveSearchSeconds);
    EXPECT_NEAR(stats.solveEncodeSeconds + stats.solveSearchSeconds,
                stats.solveSeconds, 1e-9);
    EXPECT_GT(clauses, 0u);
    // Every measured pattern is encoded exactly once across rounds.
    EXPECT_EQ(patterns_encoded, report.counts.patterns.size());

    // First round pays the structural encoding; later rounds only add
    // pattern constraints.
    EXPECT_GT(stats.solveRounds.front().clausesAdded, 0u);
}

TEST(Session, MergeAccumulatesAcrossRounds)
{
    // Identical patterns measured twice merge into doubled word
    // counts; new patterns append.
    SimulatedChip chip(testChipConfig('A', 8, 930));
    MeasureConfig measure = fastMeasure(chip);
    const auto words = dram::trueCellWords(chip);

    const auto one = chargedPatterns(8, 1);
    ProfileCounts counts = measureProfile(chip, one, measure, words);
    const std::uint64_t words_once = counts.wordsTested[0];

    counts.merge(measureProfile(chip, one, measure, words));
    EXPECT_EQ(counts.patterns.size(), one.size());
    EXPECT_EQ(counts.wordsTested[0], 2 * words_once);

    const auto two = chargedPatterns(8, 2);
    counts.merge(measureProfile(chip, two, measure, words));
    EXPECT_EQ(counts.patterns.size(), one.size() + two.size());
}
