/**
 * @file
 * Differential tests for the pipelined recovery session
 * (SessionConfig::pipelined). The pipelined schedule overlaps each
 * adaptive solve with the next round's measurement, which forces
 * active pattern selection to run one solve stale; the serial twin of
 * that schedule (SessionConfig::deferredPartition) must therefore be
 * BIT-IDENTICAL — same chip-operation order, same profiles, same
 * counts, same recovered function — because the overlap is pure
 * wall-clock. Against the default serial schedule (one solve
 * fresher) the recovered function must still be equivalent, though
 * the pattern count may differ by a round or two. Also covers the
 * BEEP prefetch differential: concurrent pattern crafting must not
 * change what the profiler reads or reports.
 */

#include <gtest/gtest.h>

#include "beep/beep.hh"
#include "beer/session.hh"
#include "dram/chip.hh"
#include "ecc/code_equiv.hh"
#include "ecc/hamming.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

using namespace beer;
using beer::dram::ChipConfig;
using beer::dram::makeVendorConfig;
using beer::dram::SimulatedChip;

namespace
{

ChipConfig
testChipConfig(char vendor, std::size_t k, std::uint64_t seed)
{
    ChipConfig config = makeVendorConfig(vendor, k, seed);
    config.map.rows = 64;
    config.iidErrors = true;
    return config;
}

MeasureConfig
fastMeasure(const SimulatedChip &chip)
{
    MeasureConfig measure;
    measure.pausesSeconds.clear();
    for (double ber : {0.05, 0.15, 0.3})
        measure.pausesSeconds.push_back(
            chip.retentionModel().pauseForBitErrorRate(ber, 80.0));
    measure.repeatsPerPause = 25;
    measure.thresholdProbability = 1e-4;
    return measure;
}

RecoveryReport
runSession(char vendor, std::size_t k, std::uint64_t seed,
           bool pipelined, bool deferred, bool adaptive)
{
    SimulatedChip chip(testChipConfig(vendor, k, seed));
    SessionConfig config;
    config.measure = fastMeasure(chip);
    config.wordsUnderTest = dram::trueCellWords(chip);
    config.adaptiveEarlyExit = adaptive;
    config.pipelined = pipelined;
    config.deferredPartition = deferred;
    Session session(chip, config);
    return session.run();
}

/** Bit-exactness: every observation and every decision identical. */
void
expectBitIdentical(const RecoveryReport &a, const RecoveryReport &b,
                   const std::string &label)
{
    ASSERT_TRUE(a.succeeded()) << label;
    ASSERT_TRUE(b.succeeded()) << label;
    EXPECT_EQ(a.counts.patterns, b.counts.patterns) << label;
    EXPECT_EQ(a.counts.errorCounts, b.counts.errorCounts) << label;
    EXPECT_EQ(a.counts.wordsTested, b.counts.wordsTested) << label;
    EXPECT_EQ(a.profile, b.profile) << label;
    EXPECT_TRUE(a.solve.solutions == b.solve.solutions) << label;
    EXPECT_EQ(a.usedTwoCharged, b.usedTwoCharged) << label;
    EXPECT_EQ(a.stats.patternsMeasured, b.stats.patternsMeasured)
        << label;
    EXPECT_EQ(a.stats.patternMeasurements, b.stats.patternMeasurements)
        << label;
    EXPECT_EQ(a.stats.measureRounds, b.stats.measureRounds) << label;
    EXPECT_EQ(a.stats.solveCalls, b.stats.solveCalls) << label;
    EXPECT_EQ(a.stats.escalations, b.stats.escalations) << label;
}

} // anonymous namespace

TEST(SessionPipeline, BitIdenticalToDeferredPartitionTwin)
{
    for (std::size_t k : {8u, 16u, 32u}) {
        for (char vendor : {'A', 'B', 'C'}) {
            // k=32 sessions are expensive; one vendor suffices there.
            if (k == 32 && vendor != 'B')
                continue;
            const std::uint64_t seed = 7000 + 10 * k + (std::uint64_t)vendor;
            const RecoveryReport pipe = runSession(
                vendor, k, seed, /*pipelined=*/true,
                /*deferred=*/false, /*adaptive=*/true);
            const RecoveryReport twin = runSession(
                vendor, k, seed, /*pipelined=*/false,
                /*deferred=*/true, /*adaptive=*/true);
            const std::string label = std::string("vendor ") + vendor +
                                      " k=" + std::to_string(k);
            expectBitIdentical(pipe, twin, label);
        }
    }
}

TEST(SessionPipeline, BitIdenticalToSerialWithoutAdaptiveExit)
{
    // Without adaptive early exit there is no active selection and no
    // staleness: round 1 measures the whole plan and the single solve
    // decides. The pipelined path must degenerate to the exact serial
    // behavior.
    for (char vendor : {'A', 'B', 'C'}) {
        const std::uint64_t seed = 7600 + (std::uint64_t)vendor;
        const RecoveryReport pipe =
            runSession(vendor, 16, seed, /*pipelined=*/true,
                       /*deferred=*/false, /*adaptive=*/false);
        const RecoveryReport serial =
            runSession(vendor, 16, seed, /*pipelined=*/false,
                       /*deferred=*/false, /*adaptive=*/false);
        expectBitIdentical(pipe, serial,
                           std::string("vendor ") + vendor);
    }
}

TEST(SessionPipeline, FunctionMatchesDefaultSerialSchedule)
{
    // Against the DEFAULT serial schedule the stale partition may
    // spend a round or two more (or fewer), but both must converge to
    // the provably unique — hence equivalent — ECC function.
    for (std::size_t k : {8u, 16u}) {
        for (char vendor : {'A', 'B', 'C'}) {
            const std::uint64_t seed = 7300 + 10 * k + (std::uint64_t)vendor;
            SimulatedChip chip(testChipConfig(vendor, k, seed));
            const RecoveryReport pipe = runSession(
                vendor, k, seed, /*pipelined=*/true,
                /*deferred=*/false, /*adaptive=*/true);
            const RecoveryReport serial = runSession(
                vendor, k, seed, /*pipelined=*/false,
                /*deferred=*/false, /*adaptive=*/true);
            ASSERT_TRUE(pipe.succeeded()) << vendor << " k=" << k;
            ASSERT_TRUE(serial.succeeded()) << vendor << " k=" << k;
            EXPECT_TRUE(ecc::equivalent(pipe.recoveredCode(),
                                        serial.recoveredCode()))
                << vendor << " k=" << k;
            EXPECT_TRUE(ecc::equivalent(pipe.recoveredCode(),
                                        chip.groundTruthCode()))
                << vendor << " k=" << k;
        }
    }
}

TEST(SessionPipeline, EscalationReplaysBitIdentically)
{
    // (12,8) codes are where 1-CHARGED profiles stay ambiguous and the
    // 2-CHARGED escalation engages; the pipelined arm speculates the
    // escalation's first chunk beside the solve that decides it, and
    // the replay over the appended plan must land on exactly the
    // patterns already measured. Deterministic given fixed seeds.
    std::size_t escalations = 0;
    for (std::uint64_t seed : {911u, 912u, 913u, 914u, 915u}) {
        const RecoveryReport pipe =
            runSession('A', 8, seed, /*pipelined=*/true,
                       /*deferred=*/false, /*adaptive=*/true);
        const RecoveryReport twin =
            runSession('A', 8, seed, /*pipelined=*/false,
                       /*deferred=*/true, /*adaptive=*/true);
        expectBitIdentical(pipe, twin,
                           "seed " + std::to_string(seed));
        if (pipe.usedTwoCharged)
            ++escalations;
    }
    // The suite must actually exercise the speculative-escalation
    // path; these seeds do (checked once, stable forever after).
    EXPECT_GE(escalations, 1u);
}

TEST(SessionPipeline, SharedSolverPoolAcrossSessions)
{
    // The service scheduler hands every session one shared pool; the
    // sessions must not wedge on it (ClaimableTask joins run inline
    // when every worker is busy) and must still recover correctly.
    util::ThreadPool pool(2, /*background=*/true);
    for (char vendor : {'A', 'B'}) {
        SimulatedChip chip(testChipConfig(vendor, 16, 7500));
        SessionConfig config;
        config.measure = fastMeasure(chip);
        config.wordsUnderTest = dram::trueCellWords(chip);
        config.pipelined = true;
        config.solverPool = &pool;
        Session session(chip, config);
        const RecoveryReport report = session.run();
        ASSERT_TRUE(report.succeeded()) << vendor;
        EXPECT_TRUE(ecc::equivalent(report.recoveredCode(),
                                    chip.groundTruthCode()))
            << vendor;
        // Overlap accounting invariants. The magnitude is timing- and
        // machine-dependent, so only the sanity bounds are asserted.
        EXPECT_GE(report.stats.overlapSeconds, 0.0);
        EXPECT_LE(report.stats.overlapSeconds,
                  report.stats.solveSeconds + 1.0);
        EXPECT_LE(report.stats.discardedRounds, 1u);
    }
}

TEST(SessionPipeline, BeepPrefetchMatchesSerialCrafting)
{
    // Concurrent pattern crafting must be invisible in the output:
    // a prefetched pattern is honored only when the known-error set
    // is unchanged since the prefetch launched, and crafting is a
    // pure function of that set, so reads and results are identical
    // no matter how many prefetches land or get discarded.
    util::Rng rng(17);
    const ecc::LinearCode code = ecc::randomSecCode(57, rng);
    const std::vector<std::size_t> planted = {4, 23, 40, 60};

    beep::BeepConfig serial_config;
    serial_config.passes = 2;
    serial_config.readsPerPattern = 4;
    serial_config.seed = 21;
    beep::SimulatedWord serial_word(code, planted, 1.0, 19);
    beep::Profiler serial_profiler(code, serial_config);
    const beep::BeepResult serial =
        serial_profiler.profile(serial_word);

    util::ThreadPool pool(2, /*background=*/true);
    beep::BeepConfig prefetch_config = serial_config;
    prefetch_config.craftPool = &pool;
    prefetch_config.craftAhead = 2;
    beep::SimulatedWord prefetch_word(code, planted, 1.0, 19);
    beep::Profiler prefetch_profiler(code, prefetch_config);
    const beep::BeepResult prefetched =
        prefetch_profiler.profile(prefetch_word);

    EXPECT_EQ(prefetched.errorCells, serial.errorCells);
    EXPECT_EQ(prefetched.patternsTested, serial.patternsTested);
    EXPECT_EQ(prefetched.reads, serial.reads);
    EXPECT_EQ(prefetched.informativeReads, serial.informativeReads);
    EXPECT_EQ(prefetched.skippedTargets, serial.skippedTargets);
    EXPECT_EQ(serial.prefetchedPatterns, 0u);
}
