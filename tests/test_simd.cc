/**
 * @file
 * Property tests for the SIMD-widened simulation engine.
 *
 * The contracts under test:
 *
 *  - every backend (u64x1, u64x4, u64x8) produces identical
 *    WordSimStats and ProfileCounts for every code and thread count —
 *    forced through SimConfig::simdBackend so the portable fallbacks
 *    make the test meaningful on hosts without AVX2/AVX-512;
 *  - the wide decode kernels match the scalar decoder lane-for-lane
 *    (outcome masks, corrections, post-correction data errors);
 *  - the BEER_SIMD environment override steers dispatch;
 *  - the alias-table geometric sampler draws the same distribution
 *    the log-based sampler does;
 *  - BEEP's batched word testing is bit-identical to sequential
 *    test() calls, and its sharded evaluation is thread-count- and
 *    backend-invariant.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "beep/eval.hh"
#include "beep/word_under_test.hh"
#include "beer/measure.hh"
#include "beer/patterns.hh"
#include "ecc/bitsliced.hh"
#include "ecc/bitsliced_kernel.hh"
#include "ecc/decoder.hh"
#include "ecc/hamming.hh"
#include "sim/engine.hh"
#include "sim/stats_reduce.hh"
#include "sim/word_sim.hh"
#include "util/rng.hh"
#include "util/simd.hh"

using namespace beer;
using ecc::BitslicedDecoder;
using ecc::DecodeOutcome;
using ecc::LinearCode;
using ecc::randomSecCode;
using ecc::WideDecodeLanes;
using gf2::BitVec;
using sim::EngineKernel;
using sim::SimConfig;
using sim::simulateRetentionErrors;
using sim::WordSimStats;
using util::Rng;
using util::simd::Backend;

namespace
{

constexpr Backend kAllWidths[] = {Backend::U64x1, Backend::U64x2,
                                  Backend::U64x4, Backend::U64x8};

/** Set/unset BEER_SIMD for a scope. */
class ScopedEnvBackend
{
  public:
    explicit ScopedEnvBackend(const char *value)
    {
        setenv("BEER_SIMD", value, 1);
    }
    ~ScopedEnvBackend() { unsetenv("BEER_SIMD"); }
};

BitVec
randomErrorWord(std::size_t n, double density, Rng &rng)
{
    BitVec e(n);
    for (std::size_t i = 0; i < n; ++i)
        if (rng.bernoulli(density))
            e.set(i, true);
    return e;
}

bool
laneBit(const std::uint64_t *row, std::size_t lane)
{
    return (row[lane / 64] >> (lane & 63)) & 1;
}

/** Outcome of @p lane from the wide masks; asserts the partition. */
DecodeOutcome
laneOutcome(const WideDecodeLanes &lanes, std::size_t lane)
{
    std::size_t matches = 0;
    DecodeOutcome outcome = DecodeOutcome::NoError;
    for (std::size_t o = 0; o < 6; ++o) {
        if (laneBit(lanes.outcome[o], lane)) {
            outcome = (DecodeOutcome)o;
            ++matches;
        }
    }
    EXPECT_EQ(matches, 1u);
    return outcome;
}

WordSimStats
runRetention(const LinearCode &code, Backend backend,
             std::size_t threads, std::uint64_t seed)
{
    BitVec data(code.k());
    Rng pattern_rng(seed ^ 0x1234);
    for (std::size_t i = 0; i < code.k(); ++i)
        data.set(i, pattern_rng.bernoulli(0.5));
    const BitVec codeword = code.encode(data);
    const BitVec mask =
        sim::chargedMask(codeword, dram::CellType::True);

    SimConfig config;
    config.simdBackend = backend;
    config.threads = threads;
    config.wordsPerShard = 1 << 12; // many shards, partial tail shard
    Rng rng(seed);
    return simulateRetentionErrors(code, codeword, mask, 0.08, 150000,
                                   rng, config);
}

} // anonymous namespace

TEST(SimdBackend, NamesParseAndRoundTrip)
{
    for (Backend b : {Backend::Auto, Backend::U64x1, Backend::U64x2,
                      Backend::U64x4, Backend::U64x8}) {
        const auto parsed =
            util::simd::parseBackend(util::simd::backendName(b));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, b);
    }
    EXPECT_FALSE(util::simd::parseBackend("avx99").has_value());
    EXPECT_EQ(util::simd::backendLanes(Backend::U64x1), 64u);
    EXPECT_EQ(util::simd::backendLanes(Backend::U64x2), 128u);
    EXPECT_EQ(util::simd::backendLanes(Backend::U64x4), 256u);
    EXPECT_EQ(util::simd::backendLanes(Backend::U64x8), 512u);
}

TEST(SimdBackend, DispatchServesEveryForcedWidth)
{
    // Forced widths must resolve to a kernel of exactly that width on
    // ANY host: natively when CPU+build allow, portably otherwise.
    for (Backend b : kAllWidths) {
        const EngineKernel &kernel = sim::engineKernel(b);
        EXPECT_EQ(kernel.backend, b);
        EXPECT_EQ(kernel.lanes, util::simd::backendLanes(b));
        EXPECT_EQ(kernel.words * 64, kernel.lanes);
    }
    // Auto picks something runnable.
    const EngineKernel &auto_kernel = sim::engineKernel(Backend::Auto);
    EXPECT_TRUE(auto_kernel.native);
}

TEST(SimdBackend, EnvVariableSteersAutoDispatch)
{
    {
        ScopedEnvBackend env("u64x4");
        EXPECT_EQ(util::simd::envBackend(), Backend::U64x4);
        EXPECT_EQ(sim::engineKernel(Backend::Auto).backend,
                  Backend::U64x4);
        // An explicit config still wins over the environment.
        EXPECT_EQ(sim::engineKernel(Backend::U64x8).backend,
                  Backend::U64x8);
    }
    EXPECT_EQ(util::simd::envBackend(), Backend::Auto);
}

TEST(SimdBackend, LaneCountPicksNarrowestKernel)
{
    EXPECT_EQ(sim::engineKernelForLanes(Backend::U64x8, 8).words, 1u);
    EXPECT_EQ(sim::engineKernelForLanes(Backend::U64x8, 64).words, 1u);
    EXPECT_EQ(sim::engineKernelForLanes(Backend::U64x8, 65).words, 4u);
    EXPECT_EQ(sim::engineKernelForLanes(Backend::U64x8, 300).words, 8u);
    // ... capped at the resolved backend.
    EXPECT_EQ(sim::engineKernelForLanes(Backend::U64x1, 300).words, 1u);
}

TEST(SimdEngine, WideKernelsMatchScalarDecodeLaneForLane)
{
    Rng rng(71);
    for (std::size_t k : {4u, 8u, 16u, 32u, 57u}) {
        const LinearCode code = randomSecCode(k, rng);
        const std::size_t n = code.n();
        const BitslicedDecoder decoder(code);

        BitVec data(k);
        for (std::size_t i = 0; i < k; ++i)
            data.set(i, rng.bernoulli(0.5));
        const BitVec codeword = code.encode(data);

        for (Backend b : kAllWidths) {
            const EngineKernel &kernel = sim::engineKernel(b);
            const std::size_t W = kernel.words;
            const std::size_t lanes = kernel.lanes;

            // Random error words transposed into the wide buffer;
            // lane 0 stays error-free to cover the NoError path.
            std::vector<std::uint64_t> error(n * W, 0);
            std::vector<BitVec> errors;
            Rng word_rng(500 + k); // same words for every backend
            for (std::size_t lane = 0; lane < lanes; ++lane) {
                const BitVec e =
                    lane == 0 ? BitVec(n)
                              : randomErrorWord(n, 0.12, word_rng);
                errors.push_back(e);
                for (std::size_t pos = 0; pos < n; ++pos)
                    if (e.get(pos))
                        error[pos * W + lane / 64] |=
                            (std::uint64_t)1 << (lane & 63);
            }

            WideDecodeLanes out;
            out.prepare(n, W);
            kernel.decodeBatch(decoder, error.data(), out);

            for (std::size_t lane = 0; lane < lanes; ++lane) {
                const BitVec received = codeword ^ errors[lane];
                const ecc::DecodeResult result =
                    ecc::decode(code, received);
                const DecodeOutcome outcome = ecc::classify(
                    code, codeword, received, result);

                EXPECT_EQ(laneBit(out.anyRaw, lane),
                          !errors[lane].isZero());
                EXPECT_EQ(laneOutcome(out, lane), outcome)
                    << kernel.name << " k=" << k << " lane " << lane;

                // The kernel's flipped position(s) vs the scalar's.
                std::size_t flipped = n;
                std::size_t count = 0;
                for (std::size_t pos = 0; pos < n; ++pos) {
                    if (laneBit(&out.correction[pos * W], lane)) {
                        flipped = pos;
                        ++count;
                    }
                }
                EXPECT_LE(count, 1u);
                EXPECT_EQ(flipped, result.flippedBit == SIZE_MAX
                                       ? n
                                       : result.flippedBit)
                    << kernel.name << " k=" << k << " lane " << lane;
            }
        }
    }
}

TEST(SimdEngine, NativeAndPortableKernelsAgreeBitwise)
{
    // Where a native kernel exists, its raw output buffers must match
    // the portable kernel of the same width bit for bit.
    Rng rng(73);
    const LinearCode code = randomSecCode(16, rng);
    const std::size_t n = code.n();
    const BitslicedDecoder decoder(code);

    const std::pair<const EngineKernel *, const EngineKernel *>
        pairs[] = {{sim::engineU64x2Neon(), &sim::engineU64x2Generic()},
                   {sim::engineU64x4Avx2(), &sim::engineU64x4Generic()},
                   {sim::engineU64x8Avx512(),
                    &sim::engineU64x8Generic()}};
    for (const auto &[native, portable] : pairs) {
        if (!native)
            continue; // build without that ISA
        const std::size_t W = portable->words;
        std::vector<std::uint64_t> error(n * W, 0);
        Rng fill(77);
        for (std::size_t i = 0; i < error.size(); ++i)
            error[i] = fill.next() & fill.next(); // ~25% density

        WideDecodeLanes a;
        WideDecodeLanes b;
        a.prepare(n, W);
        b.prepare(n, W);
        native->decodeBatch(decoder, error.data(), a);
        portable->decodeBatch(decoder, error.data(), b);

        EXPECT_EQ(a.correction, b.correction);
        for (std::size_t j = 0; j < W; ++j) {
            EXPECT_EQ(a.anyRaw[j], b.anyRaw[j]);
            for (std::size_t o = 0; o < 6; ++o)
                EXPECT_EQ(a.outcome[o][j], b.outcome[o][j]);
        }
    }
}

TEST(SimdEngine, StatsIdenticalAcrossBackends)
{
    Rng code_rng(79);
    for (std::size_t k : {4u, 8u, 16u, 32u, 57u}) {
        const LinearCode code = randomSecCode(k, code_rng);
        const WordSimStats reference =
            runRetention(code, Backend::U64x1, 1, 83 + k);
        for (Backend b :
             {Backend::U64x2, Backend::U64x4, Backend::U64x8}) {
            EXPECT_EQ(reference, runRetention(code, b, 1, 83 + k))
                << "k=" << k << " backend "
                << util::simd::backendName(b);
        }
    }
}

TEST(SimdEngine, StatsIdenticalAcrossBackendsAndThreadCounts)
{
    Rng code_rng(89);
    const LinearCode code = randomSecCode(16, code_rng);
    const WordSimStats reference =
        runRetention(code, Backend::U64x1, 1, 97);
    for (Backend b : kAllWidths)
        for (std::size_t threads : {2u, 8u})
            EXPECT_EQ(reference, runRetention(code, b, threads, 97))
                << util::simd::backendName(b) << " x " << threads
                << " threads";
}

TEST(SimdEngine, ProfileCountsIdenticalAcrossBackends)
{
    Rng code_rng(101);
    const LinearCode code = randomSecCode(16, code_rng);
    const auto patterns = chargedPatterns(16, 1);

    auto run = [&](Backend backend) {
        SimConfig config;
        config.simdBackend = backend;
        Rng rng(103);
        return measureProfileSim(code, patterns, 0.05, 30000, rng,
                                 config);
    };

    const ProfileCounts reference = run(Backend::U64x1);
    for (Backend b :
         {Backend::U64x2, Backend::U64x4, Backend::U64x8}) {
        const ProfileCounts counts = run(b);
        EXPECT_EQ(reference.k, counts.k);
        EXPECT_EQ(reference.patterns, counts.patterns);
        EXPECT_EQ(reference.errorCounts, counts.errorCounts);
        EXPECT_EQ(reference.wordsTested, counts.wordsTested);
    }
}

TEST(GeometricSampler, AliasTableMatchesGeometricDistribution)
{
    const double p = 0.1;
    const util::GeometricSampler alias_sampler(p);
    ASSERT_TRUE(alias_sampler.usesAliasTable());

    Rng rng(107);
    const std::size_t draws = 400000;
    double sum = 0.0;
    std::uint64_t zeros = 0;
    std::uint64_t deep_tail = 0;
    for (std::size_t i = 0; i < draws; ++i) {
        const std::uint64_t g = alias_sampler(rng);
        sum += (double)g;
        zeros += g == 0;
        deep_tail += g >= 2 * util::GeometricSampler::kTail;
    }
    // Mean (1-p)/p = 9, P(0) = p = 0.1, P(g >= 510) = 0.9^510 ~ 5e-24.
    EXPECT_NEAR(sum / (double)draws, 9.0, 0.15);
    EXPECT_NEAR((double)zeros / (double)draws, 0.1, 0.005);
    EXPECT_EQ(deep_tail, 0u);

    // Sparse rates fall back to the log-based skip sampler.
    EXPECT_FALSE(util::GeometricSampler(0.001).usesAliasTable());
    // p = 1: every trial succeeds, gaps are all zero.
    const util::GeometricSampler certain(1.0);
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_EQ(certain(rng), 0u);
}

TEST(BeepBatched, TestManyMatchesSequentialTest)
{
    Rng rng(109);
    const LinearCode code = randomSecCode(16, rng);
    const std::vector<std::size_t> planted = {3, 9, 17};

    for (const double fail_prob : {1.0, 0.5}) {
        // Mixed pattern list: repeats (the crafted-pattern shape) and
        // distinct datawords (the fallback shape).
        std::vector<BitVec> patterns;
        for (std::size_t i = 0; i < 9; ++i)
            patterns.push_back(i < 4 ? randomErrorWord(16, 0.5, rng)
                                     : patterns[i % 2]);

        beep::SimulatedWord sequential(code, planted, fail_prob, 555);
        beep::SimulatedWord batched(code, planted, fail_prob, 555);

        std::vector<BitVec> expected;
        for (const BitVec &pattern : patterns)
            expected.push_back(sequential.test(pattern));

        std::vector<BitVec> actual;
        batched.testMany(patterns.data(), patterns.size(), actual);
        ASSERT_EQ(actual.size(), expected.size());
        for (std::size_t i = 0; i < expected.size(); ++i)
            EXPECT_EQ(actual[i], expected[i])
                << "fail_prob " << fail_prob << " read " << i;
    }
}

TEST(BeepBatched, StuckAtFaultModelAlsoMatches)
{
    Rng rng(113);
    const LinearCode code = randomSecCode(8, rng);
    const std::vector<std::size_t> planted = {1, 6};

    std::vector<BitVec> patterns;
    for (std::size_t i = 0; i < 5; ++i)
        patterns.push_back(randomErrorWord(8, 0.5, rng));

    beep::SimulatedWord sequential(code, planted, 0.7, 777,
                                   beep::FaultModel::StuckAtDischarged);
    beep::SimulatedWord batched(code, planted, 0.7, 777,
                                beep::FaultModel::StuckAtDischarged);

    std::vector<BitVec> actual;
    batched.testMany(patterns.data(), patterns.size(), actual);
    for (std::size_t i = 0; i < patterns.size(); ++i)
        EXPECT_EQ(actual[i], sequential.test(patterns[i])) << i;
}

TEST(BeepEval, ResultsIdenticalAcrossThreadCounts)
{
    beep::EvalPoint point;
    point.codewordLength = 15;
    point.numErrors = 2;
    point.failProb = 1.0;
    point.passes = 1;
    beep::BeepConfig base;
    base.readsPerPattern = 3;

    auto run = [&](std::size_t threads) {
        beep::EvalConfig eval;
        eval.threads = threads;
        Rng rng(127);
        return beep::evaluateBeep(point, 8, base, rng, eval);
    };

    const beep::EvalResult one = run(1);
    for (std::size_t threads : {2u, 4u}) {
        const beep::EvalResult other = run(threads);
        EXPECT_EQ(one.words, other.words);
        EXPECT_EQ(one.successes, other.successes);
        EXPECT_EQ(one.totalIdentified, other.totalIdentified);
        EXPECT_EQ(one.totalPlanted, other.totalPlanted);
    }
}

TEST(BeepEval, ResultsIdenticalAcrossBackends)
{
    beep::EvalPoint point;
    point.codewordLength = 15;
    point.numErrors = 3;
    point.failProb = 0.75;
    point.passes = 1;
    beep::BeepConfig base;
    base.readsPerPattern = 4;

    auto run = [&](const char *backend) {
        ScopedEnvBackend env(backend);
        Rng rng(131);
        return beep::evaluateBeep(point, 6, base, rng);
    };

    const beep::EvalResult reference = run("u64x1");
    for (const char *backend : {"u64x4", "u64x8", "auto"}) {
        const beep::EvalResult other = run(backend);
        EXPECT_EQ(reference.successes, other.successes) << backend;
        EXPECT_EQ(reference.totalIdentified, other.totalIdentified)
            << backend;
    }
}

TEST(SimdEngine, StridedDecodeMatchesDenseBatch)
{
    // decodeStrided is how the engine reads lane windows straight out
    // of a transposed chip plane store; on any stride it must produce
    // exactly what decodeBatch produces on the gathered dense buffer.
    Rng rng(113);
    const LinearCode code = randomSecCode(16, rng);
    const std::size_t n = code.n();
    const BitslicedDecoder decoder(code);

    for (Backend b : kAllWidths) {
        const EngineKernel &kernel = sim::engineKernel(b);
        const std::size_t W = kernel.words;
        const std::size_t stride = W + 5; // padded plane rows

        std::vector<std::uint64_t> planes(n * stride, 0);
        std::vector<std::uint64_t> dense(n * W, 0);
        Rng fill(127);
        for (std::size_t pos = 0; pos < n; ++pos) {
            for (std::size_t j = 0; j < stride; ++j) {
                const std::uint64_t word = fill.next() & fill.next();
                planes[pos * stride + j] = word;
                if (j < W)
                    dense[pos * W + j] = word;
            }
        }

        WideDecodeLanes strided;
        WideDecodeLanes batch;
        strided.prepare(n, W);
        batch.prepare(n, W);
        kernel.decodeStrided(decoder, planes.data(), stride, strided);
        kernel.decodeBatch(decoder, dense.data(), batch);

        EXPECT_EQ(strided.correction, batch.correction) << kernel.name;
        for (std::size_t j = 0; j < W; ++j) {
            EXPECT_EQ(strided.anyRaw[j], batch.anyRaw[j])
                << kernel.name;
            for (std::size_t o = 0; o < 6; ++o)
                EXPECT_EQ(strided.outcome[o][j], batch.outcome[o][j])
                    << kernel.name << " outcome " << o;
        }
    }
}

namespace
{

/** Set/unset BEER_POPCNT for a scope. */
class ScopedEnvPopcnt
{
  public:
    explicit ScopedEnvPopcnt(const char *value)
    {
        setenv("BEER_POPCNT", value, 1);
    }
    ~ScopedEnvPopcnt() { unsetenv("BEER_POPCNT"); }
};

} // anonymous namespace

TEST(StatsReduce, PortableKernelSumsExactly)
{
    const sim::StatsReduceKernel &portable = sim::statsReducePortable();
    std::vector<std::uint64_t> a = {0, ~0ULL, 0x5555555555555555ULL};
    std::vector<std::uint64_t> b = {~0ULL, ~0ULL, 0};
    EXPECT_EQ(portable.rowPopcount(a.data(), a.size()), 64u + 32u);
    EXPECT_EQ(portable.xorRowPopcount(a.data(), b.data(), a.size()),
              64u + 0u + 32u);
    EXPECT_EQ(portable.rowPopcount(a.data(), 0), 0u);
}

TEST(StatsReduce, KernelsAgreeOnRandomRows)
{
    // The VPOPCNTDQ kernel (when this build and CPU provide it) must
    // produce the portable kernel's exact sums; popcount is exact, so
    // kernel choice is purely a speed knob. Row lengths sweep across
    // the 8-word vector boundary to cover the scalar tail.
    const sim::StatsReduceKernel &portable = sim::statsReducePortable();
    const sim::StatsReduceKernel *native = sim::statsReduceVpopcntdq();
    const bool native_usable =
        native && util::simd::cpuHasAvx512Vpopcntdq();

    Rng rng(131);
    for (std::size_t words = 1; words <= 40; words += 3) {
        std::vector<std::uint64_t> a(words);
        std::vector<std::uint64_t> b(words);
        for (std::size_t j = 0; j < words; ++j) {
            a[j] = rng.next();
            b[j] = rng.next() & rng.next();
        }
        // Reference sums via an independent accumulation.
        std::uint64_t plain = 0;
        std::uint64_t xored = 0;
        for (std::size_t j = 0; j < words; ++j) {
            plain += (std::uint64_t)__builtin_popcountll(a[j]);
            xored += (std::uint64_t)__builtin_popcountll(a[j] ^ b[j]);
        }
        EXPECT_EQ(portable.rowPopcount(a.data(), words), plain);
        EXPECT_EQ(portable.xorRowPopcount(a.data(), b.data(), words),
                  xored);
        if (native_usable) {
            EXPECT_EQ(native->rowPopcount(a.data(), words), plain);
            EXPECT_EQ(native->xorRowPopcount(a.data(), b.data(),
                                             words),
                      xored);
        }
    }
}

TEST(StatsReduce, EnvVariableForcesKernel)
{
    {
        ScopedEnvPopcnt env("portable");
        EXPECT_STREQ(sim::statsReduceKernel().name, "portable");
    }
    {
        // Forcing vpopcntdq is always legal: hosts (or builds)
        // without the instruction keep the portable kernel, which
        // produces identical counts.
        ScopedEnvPopcnt env("vpopcntdq");
        const sim::StatsReduceKernel &kernel = sim::statsReduceKernel();
        if (util::simd::cpuHasAvx512Vpopcntdq() &&
            sim::statsReduceVpopcntdq())
            EXPECT_STREQ(kernel.name, "vpopcntdq");
        else
            EXPECT_STREQ(kernel.name, "portable");
    }
    // Auto never fails; junk dies loudly.
    EXPECT_NE(sim::statsReduceKernel().name, nullptr);
    {
        ScopedEnvPopcnt env("sse9");
        EXPECT_EXIT(sim::statsReduceKernel(),
                    ::testing::ExitedWithCode(1), "BEER_POPCNT");
    }
}
