/**
 * @file
 * Tests for the statistics helpers used by the benchmark harnesses.
 */

#include <gtest/gtest.h>

#include "util/stats.hh"

using namespace beer::util;

TEST(Stats, MeanAndStddev)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0, 6.0}), 4.0);
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
    EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
                2.138089935299395, 1e-12);
}

TEST(Stats, QuantileInterpolation)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Stats, QuantileUnsortedInput)
{
    EXPECT_DOUBLE_EQ(quantile({9.0, 1.0, 5.0}, 0.5), 5.0);
}

TEST(Stats, BoxStats)
{
    const BoxStats box = boxStats({1, 2, 3, 4, 5, 6, 7, 8, 9});
    EXPECT_DOUBLE_EQ(box.min, 1.0);
    EXPECT_DOUBLE_EQ(box.median, 5.0);
    EXPECT_DOUBLE_EQ(box.max, 9.0);
    EXPECT_DOUBLE_EQ(box.q1, 3.0);
    EXPECT_DOUBLE_EQ(box.q3, 7.0);
}

TEST(Stats, BootstrapCiContainsMedian)
{
    Rng rng(31);
    std::vector<double> xs;
    for (int i = 0; i < 200; ++i)
        xs.push_back(10.0 + rng.normal());
    const BootstrapCi ci = bootstrapMedianCi(xs, rng, 500, 0.95);
    EXPECT_LE(ci.lo, ci.median);
    EXPECT_GE(ci.hi, ci.median);
    EXPECT_NEAR(ci.median, 10.0, 0.3);
    EXPECT_LT(ci.hi - ci.lo, 1.0);
}

TEST(Stats, BootstrapEmptySample)
{
    Rng rng(1);
    const BootstrapCi ci = bootstrapMedianCi({}, rng);
    EXPECT_DOUBLE_EQ(ci.median, 0.0);
}

TEST(Stats, Accumulator)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    acc.add(3.0);
    acc.add(-1.0);
    acc.add(4.0);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.min(), -1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 4.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 6.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
}
