/**
 * @file
 * Tests for the fingerprint cache: exact hits return the stored
 * function without any solver involvement, near matches produce a
 * sound shared subset whose warm start converges to the same ECC
 * function as a cold solve, the LRU bound evicts in recency order,
 * and the disk round trip preserves both content and recency.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <random>
#include <string>

#include "beer/patterns.hh"
#include "beer/profile.hh"
#include "beer/solver.hh"
#include "ecc/code_equiv.hh"
#include "ecc/hamming.hh"
#include "svc/fingerprint_cache.hh"
#include "util/rng.hh"

using namespace beer;
using beer::ecc::LinearCode;
using beer::ecc::equivalent;
using beer::ecc::randomSecCode;
using beer::svc::FingerprintCache;
using beer::svc::FingerprintCacheConfig;
using beer::util::Rng;

namespace
{

MiscorrectionProfile
plantedProfile(const LinearCode &code,
               const std::vector<std::size_t> &charged)
{
    return exhaustiveProfile(code,
                             chargedPatternUnion(code.k(), charged));
}

/** Temp path unique to the current test. */
std::string
tempCachePath()
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + "fpcache_" +
           std::string(info->name()) + ".txt";
}

} // anonymous namespace

TEST(SvcFingerprintCache, ExactHitReturnsStoredFunction)
{
    Rng rng(3);
    const LinearCode code = randomSecCode(8, rng);
    const MiscorrectionProfile profile = plantedProfile(code, {1});

    FingerprintCache cache;
    EXPECT_EQ(cache.lookup(profile, code.numParityBits()).kind,
              FingerprintCache::Hit::Kind::Miss);

    cache.insert(profile, code.numParityBits(), code);
    const auto hit = cache.lookup(profile, code.numParityBits());
    ASSERT_EQ(hit.kind, FingerprintCache::Hit::Kind::Exact);
    ASSERT_TRUE(hit.code.has_value());
    EXPECT_TRUE(*hit.code == code);

    const auto stats = cache.stats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.exactHits, 1u);
    EXPECT_EQ(stats.misses, 1u);
}

TEST(SvcFingerprintCache, FingerprintIsPatternOrderIndependent)
{
    Rng rng(4);
    const LinearCode code = randomSecCode(8, rng);
    const MiscorrectionProfile profile = plantedProfile(code, {1});

    MiscorrectionProfile shuffled = profile;
    std::mt19937 gen(99);
    std::shuffle(shuffled.patterns.begin(), shuffled.patterns.end(),
                 gen);

    EXPECT_EQ(FingerprintCache::fingerprint(profile,
                                            code.numParityBits()),
              FingerprintCache::fingerprint(shuffled,
                                            code.numParityBits()));

    FingerprintCache cache;
    cache.insert(profile, code.numParityBits(), code);
    EXPECT_EQ(cache.lookup(shuffled, code.numParityBits()).kind,
              FingerprintCache::Hit::Kind::Exact);
}

TEST(SvcFingerprintCache, DimensionsKeyTheFingerprint)
{
    Rng rng(5);
    const LinearCode code = randomSecCode(8, rng);
    const MiscorrectionProfile profile = plantedProfile(code, {1});

    FingerprintCache cache;
    cache.insert(profile, code.numParityBits(), code);
    // Same patterns under a different parity-bit count is a different
    // recovery problem — must not hit.
    EXPECT_EQ(cache.lookup(profile, code.numParityBits() + 1).kind,
              FingerprintCache::Hit::Kind::Miss);
}

TEST(SvcFingerprintCache, NearMatchWarmStartConvergesToColdSolve)
{
    Rng rng(7);
    const LinearCode code = randomSecCode(8, rng);
    const std::size_t parity = code.numParityBits();
    const MiscorrectionProfile full = plantedProfile(code, {1, 2});

    // The cached chip observed all but the last two patterns — a
    // fleet sibling with slightly less measurement coverage.
    MiscorrectionProfile partial = full;
    partial.patterns.resize(partial.patterns.size() - 2);

    FingerprintCache cache;
    cache.insert(partial, parity, code);

    const auto hit = cache.lookup(full, parity);
    ASSERT_EQ(hit.kind, FingerprintCache::Hit::Kind::Near);
    EXPECT_GT(hit.overlap, 0.9);
    EXPECT_EQ(hit.shared.patterns.size(),
              full.patterns.size() - 2);

    // Soundness: every shared entry is one of the query's own.
    for (const PatternProfile &entry : hit.shared.patterns)
        EXPECT_NE(std::find(full.patterns.begin(),
                            full.patterns.end(), entry),
                  full.patterns.end());

    const BeerSolveResult cold = solveForEccFunction(full, parity);
    ASSERT_TRUE(cold.unique());

    IncrementalSolver warm(full.k, parity);
    const auto warm_stats = warm.warmStart(hit.shared);
    EXPECT_EQ(warm_stats.patternsEncoded, hit.shared.patterns.size());
    warm.addProfile(full);
    const BeerSolveResult result = warm.solve();
    ASSERT_TRUE(result.unique());
    EXPECT_TRUE(
        equivalent(result.solutions.front(), cold.solutions.front()));
    EXPECT_TRUE(equivalent(result.solutions.front(), code));
}

TEST(SvcFingerprintCache, RepairAwareNearMatchIgnoresSuspectRows)
{
    // A repaired chip's suspect rows (quorum disagreement, noise
    // residue) differ from its clean sibling's cached entry; scoring
    // on the surviving clean rows must still find the sibling.
    Rng rng(17);
    const LinearCode code = randomSecCode(8, rng);
    const std::size_t parity = code.numParityBits();
    const MiscorrectionProfile full = plantedProfile(code, {1, 2});
    ASSERT_GE(full.patterns.size(), 12u);

    FingerprintCacheConfig config;
    config.nearMatchThreshold = 0.9;
    FingerprintCache cache(config);
    cache.insert(full, parity, code);

    // Corrupt a sixth of the rows so the plain overlap falls below
    // the threshold...
    MiscorrectionProfile corrupted = full;
    const std::size_t tainted = full.patterns.size() / 6;
    for (std::size_t i = 0; i < tainted; ++i) {
        PatternProfile &entry = corrupted.patterns[i];
        for (std::size_t bit = 0; bit < corrupted.k; ++bit) {
            if (!patternContains(entry.pattern, bit)) {
                entry.miscorrectable.flip(bit);
                break;
            }
        }
    }
    // ...and confirm that, unflagged, the query really misses.
    EXPECT_EQ(cache.lookup(corrupted, parity).kind,
              FingerprintCache::Hit::Kind::Miss);
    EXPECT_EQ(cache.stats().repairAwareHits, 0u);

    // Flagged as suspect, the clean-row view scores ~1.0.
    for (std::size_t i = 0; i < tainted; ++i)
        corrupted.patterns[i].suspect = true;
    const auto hit = cache.lookup(corrupted, parity);
    ASSERT_EQ(hit.kind, FingerprintCache::Hit::Kind::Near);
    EXPECT_GT(hit.overlap, 0.99);
    EXPECT_EQ(cache.stats().repairAwareHits, 1u);

    // The warm-start subset is the query's own clean evidence: every
    // suspect row is excluded, every shared row is the query's.
    EXPECT_EQ(hit.shared.patterns.size(),
              full.patterns.size() - tainted);
    for (const PatternProfile &entry : hit.shared.patterns) {
        EXPECT_FALSE(entry.suspect);
        EXPECT_NE(std::find(corrupted.patterns.begin(),
                            corrupted.patterns.end(), entry),
                  corrupted.patterns.end());
    }
}

TEST(SvcFingerprintCache, LruEvictsLeastRecentlyUsed)
{
    Rng rng(11);
    const LinearCode a = randomSecCode(6, rng);
    const LinearCode b = randomSecCode(6, rng);
    const LinearCode c = randomSecCode(6, rng);
    const MiscorrectionProfile pa = plantedProfile(a, {1});
    const MiscorrectionProfile pb = plantedProfile(b, {1});
    const MiscorrectionProfile pc = plantedProfile(c, {1});
    ASSERT_NE(FingerprintCache::fingerprint(pa, a.numParityBits()),
              FingerprintCache::fingerprint(pb, b.numParityBits()));

    FingerprintCacheConfig config;
    config.capacity = 2;
    // Random same-k profiles overlap heavily in their zero rows;
    // disable near matching so misses stay misses in this test.
    config.nearMatchThreshold = 1.1;
    FingerprintCache cache(config);

    cache.insert(pa, a.numParityBits(), a);
    cache.insert(pb, b.numParityBits(), b);
    // Touch A so B becomes the eviction candidate.
    EXPECT_EQ(cache.lookup(pa, a.numParityBits()).kind,
              FingerprintCache::Hit::Kind::Exact);
    cache.insert(pc, c.numParityBits(), c);

    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.lookup(pa, a.numParityBits()).kind,
              FingerprintCache::Hit::Kind::Exact);
    EXPECT_EQ(cache.lookup(pb, b.numParityBits()).kind,
              FingerprintCache::Hit::Kind::Miss);
    EXPECT_EQ(cache.lookup(pc, c.numParityBits()).kind,
              FingerprintCache::Hit::Kind::Exact);
}

TEST(SvcFingerprintCache, PersistenceRoundTripPreservesRecency)
{
    Rng rng(13);
    const LinearCode a = randomSecCode(6, rng);
    const LinearCode b = randomSecCode(6, rng);
    const LinearCode c = randomSecCode(6, rng);
    const MiscorrectionProfile pa = plantedProfile(a, {1});
    const MiscorrectionProfile pb = plantedProfile(b, {1});
    const MiscorrectionProfile pc = plantedProfile(c, {1});

    FingerprintCacheConfig config;
    config.capacity = 2;
    config.nearMatchThreshold = 1.1;
    config.path = tempCachePath();

    {
        FingerprintCache cache(config);
        cache.insert(pa, a.numParityBits(), a);
        cache.insert(pb, b.numParityBits(), b);
        ASSERT_TRUE(cache.flushToDisk());
    }

    FingerprintCache reloaded(config);
    ASSERT_TRUE(reloaded.loadFromDisk());
    EXPECT_EQ(reloaded.stats().loadedEntries, 2u);

    // A was inserted first (LRU after reload, with no touches since):
    // inserting C must evict A, not B — the reload preserved recency.
    reloaded.insert(pc, c.numParityBits(), c);
    EXPECT_EQ(reloaded.lookup(pa, a.numParityBits()).kind,
              FingerprintCache::Hit::Kind::Miss);
    const auto hit = reloaded.lookup(pb, b.numParityBits());
    ASSERT_EQ(hit.kind, FingerprintCache::Hit::Kind::Exact);
    EXPECT_TRUE(*hit.code == b);
    EXPECT_EQ(reloaded.lookup(pc, c.numParityBits()).kind,
              FingerprintCache::Hit::Kind::Exact);

    std::remove(config.path.c_str());
}

TEST(SvcFingerprintCache, CorruptPersistenceFileIsIgnored)
{
    FingerprintCacheConfig config;
    config.path = tempCachePath();
    {
        std::FILE *f = std::fopen(config.path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("not a cache file\n", f);
        std::fclose(f);
    }
    FingerprintCache cache(config);
    EXPECT_FALSE(cache.loadFromDisk());
    EXPECT_EQ(cache.size(), 0u);
    std::remove(config.path.c_str());
}

TEST(SvcFingerprintCache, LookupManyMatchesIndividualLookups)
{
    Rng rng(41);
    FingerprintCache cache;
    const LinearCode stored = randomSecCode(16, rng);
    const MiscorrectionProfile profile =
        plantedProfile(stored, {1, 2});
    cache.insert(profile, stored.numParityBits(), stored);

    const LinearCode other = randomSecCode(16, rng);
    const MiscorrectionProfile missing =
        plantedProfile(other, {1, 2});

    // One batch carrying a hit and a miss, under a single lock pass.
    std::vector<FingerprintCache::LookupRequest> requests;
    requests.push_back({&profile, stored.numParityBits()});
    requests.push_back({&missing, other.numParityBits()});
    const auto hits = cache.lookupMany(requests);

    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0].kind, FingerprintCache::Hit::Kind::Exact);
    ASSERT_TRUE(hits[0].code.has_value());
    EXPECT_TRUE(equivalent(*hits[0].code, stored));
    EXPECT_NE(hits[1].kind, FingerprintCache::Hit::Kind::Exact);

    const auto stats = cache.stats();
    EXPECT_EQ(stats.batchedPasses, 1u);
    EXPECT_EQ(stats.batchedRequests, 2u);
    EXPECT_EQ(stats.exactHits, 1u);
}

TEST(SvcFingerprintCache, LookupManyRefreshesLruInOrder)
{
    // Earlier requests of a batch refresh LRU positions later ones
    // observe: batch-touching the oldest entry must save it from the
    // next eviction.
    Rng rng(43);
    FingerprintCacheConfig config;
    config.capacity = 2;
    FingerprintCache cache(config);

    const LinearCode a = randomSecCode(16, rng);
    const LinearCode b = randomSecCode(16, rng);
    const LinearCode c = randomSecCode(16, rng);
    const MiscorrectionProfile pa = plantedProfile(a, {1});
    const MiscorrectionProfile pb = plantedProfile(b, {1});
    const MiscorrectionProfile pc = plantedProfile(c, {1});
    cache.insert(pa, a.numParityBits(), a);
    cache.insert(pb, b.numParityBits(), b);

    std::vector<FingerprintCache::LookupRequest> requests;
    requests.push_back({&pa, a.numParityBits()}); // refresh the oldest
    cache.lookupMany(requests);

    cache.insert(pc, c.numParityBits(), c); // evicts b, not a
    EXPECT_EQ(cache.lookup(pa, a.numParityBits()).kind,
              FingerprintCache::Hit::Kind::Exact);
    EXPECT_NE(cache.lookup(pb, b.numParityBits()).kind,
              FingerprintCache::Hit::Kind::Exact);
}
