/**
 * @file
 * Tests for the HTTP adapter. The routing/serialization layer is
 * driven entirely in-process through HttpServer::handle() — the
 * socket loop is a byte shuttle over the same function — plus one
 * real-socket round trip (skipped when the sandbox forbids binding).
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

#include "beer/patterns.hh"
#include "beer/profile.hh"
#include "ecc/hamming.hh"
#include "svc/http.hh"
#include "svc/service.hh"
#include "util/rng.hh"

using namespace beer;
using beer::ecc::LinearCode;
using beer::ecc::randomSecCode;
using beer::svc::HttpResponse;
using beer::svc::HttpServer;
using beer::svc::RecoveryService;
using beer::util::Rng;

namespace
{

std::string
plantedPayload(std::size_t k, std::uint64_t seed)
{
    Rng rng(seed);
    const LinearCode code = randomSecCode(k, rng);
    return serializeProfile(
        exhaustiveProfile(code, chargedPatternUnion(k, {1, 2})));
}

/** Pull the numeric job id out of a {"job_id":N} body. */
std::uint64_t
parseJobId(const std::string &body)
{
    const std::size_t colon = body.find(':');
    EXPECT_NE(colon, std::string::npos) << body;
    return std::strtoull(body.c_str() + colon + 1, nullptr, 10);
}

} // anonymous namespace

TEST(SvcHttp, HealthAndStatsRoutes)
{
    RecoveryService service;
    HttpServer server(service);

    const HttpResponse health = server.handle("GET", "/health", "");
    EXPECT_EQ(health.status, 200);
    EXPECT_NE(health.body.find("\"ok\":true"), std::string::npos);
    EXPECT_NE(health.body.find("\"api_version\":1"),
              std::string::npos);

    const HttpResponse stats = server.handle("GET", "/v1/stats", "");
    EXPECT_EQ(stats.status, 200);
    EXPECT_NE(stats.body.find("\"scheduler\""), std::string::npos);
    EXPECT_NE(stats.body.find("\"cache\""), std::string::npos);

    EXPECT_EQ(server.handle("POST", "/health", "").status, 405);
}

TEST(SvcHttp, SubmitPollListRoundTrip)
{
    RecoveryService service;
    HttpServer server(service);
    const std::string payload = plantedPayload(8, 51);

    const HttpResponse submit =
        server.handle("POST", "/v1/jobs", payload);
    ASSERT_EQ(submit.status, 202) << submit.body;
    const std::uint64_t id = parseJobId(submit.body);
    ASSERT_NE(id, 0u);

    service.drain();
    const HttpResponse poll =
        server.handle("GET", "/v1/jobs/" + std::to_string(id), "");
    EXPECT_EQ(poll.status, 200);
    EXPECT_NE(poll.body.find("\"state\":\"done\""),
              std::string::npos);
    EXPECT_NE(poll.body.find("\"succeeded\":true"),
              std::string::npos);
    EXPECT_NE(poll.body.find("\"code\":\""), std::string::npos);

    const HttpResponse list =
        server.handle("GET", "/v1/jobs?offset=0&limit=10", "");
    EXPECT_EQ(list.status, 200);
    EXPECT_NE(list.body.find("\"total\":1"), std::string::npos);
}

TEST(SvcHttp, QueryParametersReachTheService)
{
    RecoveryService service;
    HttpServer server(service);
    const std::string payload = plantedPayload(8, 53);

    const HttpResponse first =
        server.handle("POST", "/v1/jobs", payload);
    ASSERT_EQ(first.status, 202);
    service.drain();
    ASSERT_EQ(service.health().satSolves, 1u);

    // no-cache forces a fresh solve even though the profile is cached.
    const HttpResponse second =
        server.handle("POST", "/v1/jobs?no-cache=1", payload);
    ASSERT_EQ(second.status, 202);
    service.drain();
    EXPECT_EQ(service.health().satSolves, 2u);
    const HttpResponse poll = server.handle(
        "GET", "/v1/jobs/" + std::to_string(parseJobId(second.body)),
        "");
    EXPECT_NE(poll.body.find("\"cache\":\"none\""),
              std::string::npos);

    EXPECT_EQ(
        server.handle("POST", "/v1/jobs?parity=zebra", payload)
            .status,
        400);
}

TEST(SvcHttp, ErrorsMapToStatusCodes)
{
    RecoveryService service;
    HttpServer server(service);

    EXPECT_EQ(server.handle("GET", "/nope", "").status, 404);
    EXPECT_EQ(server.handle("GET", "/v1/jobs/999", "").status, 404);
    EXPECT_EQ(server.handle("GET", "/v1/jobs/abc", "").status, 400);
    EXPECT_EQ(server.handle("DELETE", "/v1/jobs/1", "").status, 405);
    const HttpResponse bad =
        server.handle("POST", "/v1/jobs", "not a profile");
    EXPECT_EQ(bad.status, 400);
    EXPECT_NE(bad.body.find("\"error\""), std::string::npos);
}

TEST(SvcHttp, SocketRoundTrip)
{
    RecoveryService service;
    HttpServer server(service);
    if (!server.start())
        GTEST_SKIP() << "cannot bind a loopback socket here";
    ASSERT_NE(server.port(), 0);

    std::thread serving([&] { server.serve(); });

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, (const sockaddr *)&addr, sizeof(addr)), 0)
        << std::strerror(errno);

    const std::string request =
        "GET /health HTTP/1.1\r\nHost: localhost\r\n"
        "Connection: close\r\n\r\n";
    ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
              (ssize_t)request.size());

    std::string response;
    char buf[4096];
    ssize_t got;
    while ((got = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        response.append(buf, (std::size_t)got);
    ::close(fd);

    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(response.find("\"ok\":true"), std::string::npos);

    server.stop();
    serving.join();
}

TEST(SvcHttp, HealthExposesJournalQuorumAndRepairAwareCounters)
{
    RecoveryService service;
    HttpServer server(service);

    // The fault-tolerance observability surface: journal byte/record/
    // compaction counters, adaptive-quorum vote totals, and the
    // repair-aware cache-hit counter, in both /health and /v1/stats.
    for (const char *route : {"/health", "/v1/stats"}) {
        const HttpResponse response =
            server.handle("GET", route, "");
        EXPECT_EQ(response.status, 200);
        for (const char *key :
             {"\"journal\":{", "\"bytes\":", "\"records\":",
              "\"compactions\":", "\"crc_skipped\":",
              "\"torn_tail\":", "\"append_failures\":",
              "\"quorum\":{", "\"votes_spent\":", "\"escalations\":",
              "\"repair_aware_hits\":"})
            EXPECT_NE(response.body.find(key), std::string::npos)
                << route << " missing " << key;
    }
}

TEST(SvcHttp, SurvivesAcceptStormAndMidResponseResets)
{
    RecoveryService service;
    svc::ChaosSocketConfig chaos;
    chaos.seed = 7;
    chaos.acceptFailures = 2;  // storm: first accepts die in backlog
    chaos.resetEverySends = 3; // every 3rd response loses its client
    svc::ChaosSocketIo chaos_io(chaos);

    svc::HttpConfig http;
    http.socketIo = &chaos_io;
    HttpServer server(service, http);
    if (!server.start())
        GTEST_SKIP() << "cannot bind a loopback socket here";
    std::thread serving([&] { server.serve(); });

    const auto fetch_health = [&]() -> std::string {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(server.port());
        EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr),
                  1);
        if (::connect(fd, (const sockaddr *)&addr, sizeof(addr)) !=
            0) {
            ::close(fd);
            return "";
        }
        const std::string request =
            "GET /health HTTP/1.1\r\nHost: localhost\r\n"
            "Connection: close\r\n\r\n";
        (void)!::send(fd, request.data(), request.size(), 0);
        std::string response;
        char buf[4096];
        ssize_t got;
        while ((got = ::recv(fd, buf, sizeof(buf), 0)) > 0)
            response.append(buf, (std::size_t)got);
        ::close(fd);
        return response;
    };

    std::size_t successes = 0;
    for (int i = 0; i < 9; ++i)
        if (fetch_health().find("HTTP/1.1 200 OK") !=
            std::string::npos)
            ++successes;

    // The chaos really fired: the storm ate accepts and some clients
    // lost their response mid-flight — yet most requests served fine.
    EXPECT_EQ(chaos_io.acceptFaults(), 2u);
    EXPECT_GT(chaos_io.resets(), 0u);
    EXPECT_GE(successes, 5u);
    EXPECT_LT(successes, 9u);

    // And the server is still fully alive afterwards.
    EXPECT_NE(fetch_health().find("\"ok\":true"), std::string::npos);

    server.stop();
    serving.join();
}

TEST(SvcHttp, TaxonomyAndResilienceFieldsSurface)
{
    svc::ServiceConfig config;
    config.jobPolicy.maxRetries = 1;
    config.onJobStart = [](svc::JobId) {
        throw std::runtime_error("injected");
    };
    RecoveryService service(config);
    HttpServer server(service);

    const HttpResponse submit =
        server.handle("POST", "/v1/jobs", plantedPayload(8, 57));
    ASSERT_EQ(submit.status, 202) << submit.body;
    const std::uint64_t id = parseJobId(submit.body);
    ASSERT_TRUE(service.waitForJob(id));

    // The poll carries the quarantine state, the taxonomy code, the
    // attempt count, and the raw failure string.
    const HttpResponse poll =
        server.handle("GET", "/v1/jobs/" + std::to_string(id), "");
    EXPECT_EQ(poll.status, 200);
    EXPECT_NE(poll.body.find("\"state\":\"quarantined\""),
              std::string::npos)
        << poll.body;
    EXPECT_NE(poll.body.find("\"error_code\":\"internal\""),
              std::string::npos);
    EXPECT_NE(poll.body.find("\"attempts\":2"), std::string::npos);
    EXPECT_NE(poll.body.find("\"error\":\"injected\""),
              std::string::npos);

    // Health exposes the retry/quarantine/journal counters.
    const HttpResponse health = server.handle("GET", "/health", "");
    EXPECT_NE(health.body.find("\"retries\":1"), std::string::npos);
    EXPECT_NE(health.body.find("\"quarantined\":1"),
              std::string::npos);
    EXPECT_NE(health.body.find("\"journal_replays\":0"),
              std::string::npos);
    EXPECT_NE(health.body.find("\"expired\":0"), std::string::npos);
}
