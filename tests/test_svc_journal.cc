/**
 * @file
 * Tests for the bounded, checksummed job journal: replay round-trips
 * unfinished submissions, a torn tail is dropped without losing the
 * records before it, a bit-flipped mid-file record is skipped and
 * counted, a duplicated submit replays exactly once, compaction
 * preserves submission order, and a thousand jobs of churn stay within
 * the size bound with compactions visible in the stats.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "svc/journal.hh"

using beer::svc::JobJournal;
using beer::svc::JournalConfig;
using beer::svc::JournalStats;
using beer::svc::ReplayedJob;

namespace
{

/** Fresh temp path per test; the file need not exist yet. */
std::string
tempJournalPath(const char *tag)
{
    std::string path = "/tmp/beer_test_journal_";
    path += tag;
    path += ".log";
    std::remove(path.c_str());
    return path;
}

/** Frame a record exactly as the journal does. */
std::string
frame(const std::string &payload)
{
    char crc_hex[9];
    std::snprintf(crc_hex, sizeof crc_hex, "%08x",
                  beer::svc::crc32(payload.data(), payload.size()));
    return std::string(crc_hex) + " " + payload + "\n";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
}

} // anonymous namespace

TEST(SvcJournal, Crc32MatchesKnownVector)
{
    // The standard IEEE check value: crc32("123456789").
    EXPECT_EQ(beer::svc::crc32("123456789", 9), 0xcbf43926u);
    EXPECT_EQ(beer::svc::crc32("", 0), 0u);
}

TEST(SvcJournal, DisabledJournalNoOps)
{
    JobJournal journal(JournalConfig{});
    EXPECT_FALSE(journal.enabled());
    EXPECT_TRUE(journal.replay().empty());
    EXPECT_TRUE(journal.appendSubmit(1, "payload"));
    journal.appendTerminal(1, true);
    journal.sync();
    EXPECT_EQ(journal.stats().records, 0u);
}

TEST(SvcJournal, ReplayReturnsUnfinishedJobsOnly)
{
    JournalConfig config;
    config.path = tempJournalPath("unfinished");
    {
        JobJournal journal(config);
        EXPECT_TRUE(journal.replay().empty());
        EXPECT_TRUE(journal.appendSubmit(1, "alpha"));
        EXPECT_TRUE(journal.appendSubmit(2, "beta"));
        EXPECT_TRUE(journal.appendSubmit(3, "gamma"));
        journal.appendTerminal(2, /*done=*/true);
        journal.appendTerminal(1, /*done=*/false);
        journal.sync();
    }
    JobJournal restarted(config);
    const std::vector<ReplayedJob> jobs = restarted.replay();
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].id, 3u);
    EXPECT_EQ(jobs[0].payload, "gamma");
    EXPECT_EQ(restarted.stats().liveRecords, 1u);
}

TEST(SvcJournal, TornTailDroppedWithoutLosingEarlierRecords)
{
    JournalConfig config;
    config.path = tempJournalPath("torn_tail");
    // Two good records, then a crash mid-append: only half of the
    // third record's bytes reached the disk.
    const std::string torn = frame("submit 3 gamma");
    writeFile(config.path, frame("submit 1 alpha") +
                               frame("submit 2 beta") +
                               torn.substr(0, torn.size() / 2));

    JobJournal journal(config);
    const std::vector<ReplayedJob> jobs = journal.replay();
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].id, 1u);
    EXPECT_EQ(jobs[0].payload, "alpha");
    EXPECT_EQ(jobs[1].id, 2u);
    EXPECT_EQ(jobs[1].payload, "beta");
    const JournalStats stats = journal.stats();
    EXPECT_EQ(stats.tornTail, 1u);
    EXPECT_EQ(stats.crcSkipped, 0u);
}

TEST(SvcJournal, ValidFinalRecordMissingOnlyNewlineIsKept)
{
    JournalConfig config;
    config.path = tempJournalPath("no_newline");
    std::string content = frame("submit 1 alpha") +
                          frame("submit 2 beta");
    content.pop_back(); // drop the final '\n'; the CRC still holds
    writeFile(config.path, content);

    JobJournal journal(config);
    const std::vector<ReplayedJob> jobs = journal.replay();
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[1].id, 2u);
    EXPECT_EQ(journal.stats().tornTail, 0u);
}

TEST(SvcJournal, BitFlippedMidFileRecordSkippedAndCounted)
{
    JournalConfig config;
    config.path = tempJournalPath("bitflip");
    std::string second = frame("submit 2 beta");
    second[12] ^= 0x01; // flip a payload bit; the CRC now lies
    writeFile(config.path, frame("submit 1 alpha") + second +
                               frame("submit 3 gamma"));

    JobJournal journal(config);
    const std::vector<ReplayedJob> jobs = journal.replay();
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].id, 1u);
    EXPECT_EQ(jobs[1].id, 3u);
    const JournalStats stats = journal.stats();
    EXPECT_EQ(stats.crcSkipped, 1u);
    EXPECT_EQ(stats.tornTail, 0u);
}

TEST(SvcJournal, RecordAppendedOntoTornLineIsStillRecovered)
{
    JournalConfig config;
    config.path = tempJournalPath("embedded");
    // A torn append left half a record with NO newline; the next
    // append landed on the same line. The merged line fails its CRC,
    // but the embedded second record must still be found.
    const std::string torn = frame("submit 1 alpha");
    writeFile(config.path,
              torn.substr(0, torn.size() / 2) + frame("submit 2 beta"));

    JobJournal journal(config);
    const std::vector<ReplayedJob> jobs = journal.replay();
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].id, 2u);
    EXPECT_EQ(jobs[0].payload, "beta");
}

TEST(SvcJournal, DuplicatedSubmitReplaysExactlyOnce)
{
    JournalConfig config;
    config.path = tempJournalPath("duplicate");
    writeFile(config.path, frame("submit 7 payload") +
                               frame("submit 7 payload") +
                               frame("submit 8 other"));

    JobJournal journal(config);
    const std::vector<ReplayedJob> jobs = journal.replay();
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].id, 7u);
    EXPECT_EQ(jobs[1].id, 8u);
}

TEST(SvcJournal, TerminalForUnknownIdIsIgnored)
{
    JournalConfig config;
    config.path = tempJournalPath("unknown_terminal");
    writeFile(config.path,
              frame("done 99") + frame("submit 1 alpha"));

    JobJournal journal(config);
    const std::vector<ReplayedJob> jobs = journal.replay();
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].id, 1u);
}

TEST(SvcJournal, ReplayCompactsToLiveRecordsInSubmissionOrder)
{
    JournalConfig config;
    config.path = tempJournalPath("compact_order");
    writeFile(config.path,
              frame("submit 1 a") + frame("submit 2 b") +
                  frame("submit 3 c") + frame("done 2") +
                  frame("submit 4 d") + frame("failed 1"));

    JobJournal journal(config);
    const std::vector<ReplayedJob> jobs = journal.replay();
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].id, 3u);
    EXPECT_EQ(jobs[1].id, 4u);
    EXPECT_GE(journal.stats().compactions, 1u);

    // The on-disk file now holds exactly the two live submits, in
    // submission order — nothing else.
    EXPECT_EQ(readFile(config.path),
              frame("submit 3 c") + frame("submit 4 d"));
    EXPECT_EQ(journal.stats().records, 2u);
}

TEST(SvcJournal, ChurnStaysWithinSizeBoundWithVisibleCompactions)
{
    JournalConfig config;
    config.path = tempJournalPath("churn");
    config.maxBytes = 4096;
    JobJournal journal(config);
    EXPECT_TRUE(journal.replay().empty());

    // 1k jobs submitted and retired; a padded payload makes each
    // record ~64 bytes so an unbounded journal would reach ~128 KiB.
    const std::string payload(48, 'x');
    for (beer::svc::JobId id = 1; id <= 1000; ++id) {
        ASSERT_TRUE(journal.appendSubmit(id, payload));
        journal.appendTerminal(id, /*done=*/(id % 3) != 0);
        const JournalStats stats = journal.stats();
        ASSERT_LE(stats.bytes, config.maxBytes + 2 * 128)
            << "journal exceeded its bound at job " << id;
    }
    const JournalStats stats = journal.stats();
    EXPECT_GE(stats.compactions, 10u);
    EXPECT_EQ(stats.liveRecords, 0u);
    EXPECT_EQ(stats.appendFailures, 0u);

    // Everything retired, so a restart replays nothing.
    JobJournal restarted(config);
    EXPECT_TRUE(restarted.replay().empty());
}

TEST(SvcJournal, RestartSurvivesChurnMidFlight)
{
    JournalConfig config;
    config.path = tempJournalPath("midflight");
    config.maxBytes = 2048;
    {
        JobJournal journal(config);
        EXPECT_TRUE(journal.replay().empty());
        for (beer::svc::JobId id = 1; id <= 200; ++id) {
            ASSERT_TRUE(journal.appendSubmit(id, "work"));
            if (id % 2 == 0) // odd ids stay live across the restart
                journal.appendTerminal(id, true);
        }
        // No sync, no graceful shutdown: the process just dies here.
    }
    JobJournal restarted(config);
    const std::vector<ReplayedJob> jobs = restarted.replay();
    ASSERT_EQ(jobs.size(), 100u);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(jobs[i].id, 2 * i + 1);
}
