/**
 * @file
 * Tests for the session scheduler: jobs shard across pool workers and
 * genuinely run concurrently (peakConcurrent), the bounded queue
 * load-sheds instead of backlogging, execution follows submission
 * order, and a throwing job is recorded Failed without killing its
 * worker.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "svc/scheduler.hh"
#include "util/thread_pool.hh"

using beer::svc::JobId;
using beer::svc::JobState;
using beer::svc::SchedulerConfig;
using beer::svc::SessionScheduler;
using beer::util::ThreadPool;

namespace
{

/** Reusable N-party rendezvous for forcing true concurrency. */
class Barrier
{
  public:
    explicit Barrier(std::size_t parties) : parties_(parties) {}

    void arriveAndWait()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (++arrived_ >= parties_) {
            cv_.notify_all();
            return;
        }
        cv_.wait(lock, [&] { return arrived_ >= parties_; });
    }

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    std::size_t parties_;
    std::size_t arrived_ = 0;
};

} // anonymous namespace

TEST(SvcScheduler, JobsRunConcurrentlyAcrossWorkers)
{
    ThreadPool pool(3); // two workers
    SessionScheduler scheduler(pool);

    // Neither job can pass the barrier until both are running, so
    // reaching drain() at all proves two jobs executed concurrently.
    Barrier barrier(2);
    const JobId a =
        scheduler.submit([&](JobId) { barrier.arriveAndWait(); });
    const JobId b =
        scheduler.submit([&](JobId) { barrier.arriveAndWait(); });
    ASSERT_NE(a, 0u);
    ASSERT_NE(b, 0u);
    scheduler.drain();

    const auto stats = scheduler.stats();
    EXPECT_EQ(stats.submitted, 2u);
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_GE(stats.peakConcurrent, 2u);
    EXPECT_EQ(scheduler.state(a), JobState::Done);
    EXPECT_EQ(scheduler.state(b), JobState::Done);
}

TEST(SvcScheduler, BoundedQueueRejectsOverflow)
{
    ThreadPool pool(2); // one worker
    SchedulerConfig config;
    config.maxQueuedJobs = 2;
    SessionScheduler scheduler(pool, config);

    // Gate the only worker so later submissions stay queued.
    std::mutex mutex;
    std::condition_variable cv;
    bool release = false;
    bool gate_running = false;
    const JobId gate = scheduler.submit([&](JobId) {
        std::unique_lock<std::mutex> lock(mutex);
        gate_running = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
    });
    ASSERT_NE(gate, 0u);
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return gate_running; });
    }

    EXPECT_NE(scheduler.submit([](JobId) {}), 0u);
    EXPECT_NE(scheduler.submit([](JobId) {}), 0u);
    // Queue is now at maxQueuedJobs; the next submission sheds.
    EXPECT_EQ(scheduler.submit([](JobId) {}), 0u);
    EXPECT_EQ(scheduler.stats().rejected, 1u);

    {
        std::lock_guard<std::mutex> lock(mutex);
        release = true;
    }
    cv.notify_all();
    scheduler.drain();
    EXPECT_EQ(scheduler.stats().completed, 3u);
}

TEST(SvcScheduler, JobsStartInSubmissionOrder)
{
    ThreadPool pool(2); // one worker => strictly sequential
    SessionScheduler scheduler(pool);

    std::mutex mutex;
    std::vector<JobId> order;
    std::vector<JobId> submitted;
    for (int i = 0; i < 8; ++i)
        submitted.push_back(scheduler.submit([&](JobId id) {
            std::lock_guard<std::mutex> lock(mutex);
            order.push_back(id);
        }));
    scheduler.drain();
    EXPECT_EQ(order, submitted);
}

TEST(SvcScheduler, ThrowingJobIsRecordedFailed)
{
    ThreadPool pool(2);
    SessionScheduler scheduler(pool);

    const JobId bad = scheduler.submit(
        [](JobId) { throw std::runtime_error("boom"); });
    const JobId good = scheduler.submit([](JobId) {});
    ASSERT_TRUE(scheduler.wait(bad));
    ASSERT_TRUE(scheduler.wait(good));

    EXPECT_EQ(scheduler.state(bad), JobState::Failed);
    EXPECT_EQ(scheduler.state(good), JobState::Done);
    const auto stats = scheduler.stats();
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(stats.completed, 1u);
}

TEST(SvcScheduler, UnknownIdsAreReported)
{
    ThreadPool pool(2);
    SessionScheduler scheduler(pool);
    EXPECT_FALSE(scheduler.wait(42));
    EXPECT_EQ(scheduler.state(42), std::nullopt);
    EXPECT_FALSE(scheduler.wait(0));
}

TEST(SvcScheduler, StateCountsTrackJobLifecycles)
{
    ThreadPool pool(2); // one worker => strictly sequential
    SessionScheduler scheduler(pool);

    std::mutex mutex;
    std::condition_variable cv;
    bool release = false;
    bool gate_running = false;
    scheduler.submit([&](JobId) {
        std::unique_lock<std::mutex> lock(mutex);
        gate_running = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
    });
    scheduler.submit([](JobId) {});
    scheduler.submit(
        [](JobId) { throw std::runtime_error("injected"); });
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return gate_running; });
    }

    // The gate job is running and pins the single worker, so the
    // other two must still be queued.
    auto counts = scheduler.stateCounts();
    EXPECT_EQ(counts.running, 1u);
    EXPECT_EQ(counts.queued, 2u);
    EXPECT_EQ(counts.done, 0u);
    EXPECT_EQ(counts.failed, 0u);

    {
        std::lock_guard<std::mutex> lock(mutex);
        release = true;
    }
    cv.notify_all();
    scheduler.drain();

    counts = scheduler.stateCounts();
    EXPECT_EQ(counts.running, 0u);
    EXPECT_EQ(counts.queued, 0u);
    EXPECT_EQ(counts.done, 2u);
    EXPECT_EQ(counts.failed, 1u);
}

TEST(SvcScheduler, RetryPolicyRerunsThrowingJobs)
{
    ThreadPool pool(2);
    SessionScheduler scheduler(pool);

    beer::svc::JobPolicy policy;
    policy.maxRetries = 3;

    std::atomic<int> runs{0};
    const JobId flaky = scheduler.submit(
        [&](JobId) {
            // Fail twice, then succeed: the classic transient fault.
            if (runs.fetch_add(1) < 2)
                throw std::runtime_error("transient");
        },
        policy);
    ASSERT_TRUE(scheduler.wait(flaky));

    EXPECT_EQ(scheduler.state(flaky), JobState::Done);
    EXPECT_EQ(runs.load(), 3);
    EXPECT_EQ(scheduler.attempts(flaky), 3u);
    const auto stats = scheduler.stats();
    EXPECT_EQ(stats.retries, 2u);
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.quarantined, 0u);
}

TEST(SvcScheduler, ExhaustedRetriesQuarantine)
{
    ThreadPool pool(2);
    SessionScheduler scheduler(pool);

    beer::svc::JobPolicy policy;
    policy.maxRetries = 2;

    std::atomic<int> runs{0};
    const JobId doomed = scheduler.submit(
        [&](JobId) {
            ++runs;
            throw std::runtime_error("persistent");
        },
        policy);
    ASSERT_TRUE(scheduler.wait(doomed));

    // 1 original attempt + 2 retries, then terminal Quarantined (not
    // Failed: the policy was spent, fleet tooling should flag it).
    EXPECT_EQ(runs.load(), 3);
    EXPECT_EQ(scheduler.state(doomed), JobState::Quarantined);
    const auto stats = scheduler.stats();
    EXPECT_EQ(stats.retries, 2u);
    EXPECT_EQ(stats.quarantined, 1u);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(scheduler.stateCounts().quarantined, 1u);
}

TEST(SvcScheduler, StartDeadlineFailsStaleJobsUnrun)
{
    ThreadPool pool(2); // one worker
    SessionScheduler scheduler(pool);

    // Pin the worker long enough for the queued job's start deadline
    // to expire.
    std::mutex mutex;
    std::condition_variable cv;
    bool release = false;
    bool gate_running = false;
    scheduler.submit([&](JobId) {
        std::unique_lock<std::mutex> lock(mutex);
        gate_running = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
    });
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return gate_running; });
    }

    beer::svc::JobPolicy policy;
    policy.deadlineSeconds = 0.05;
    std::atomic<bool> ran{false};
    const JobId stale =
        scheduler.submit([&](JobId) { ran = true; }, policy);
    ASSERT_NE(stale, 0u);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    {
        std::lock_guard<std::mutex> lock(mutex);
        release = true;
    }
    cv.notify_all();
    ASSERT_TRUE(scheduler.wait(stale));

    EXPECT_FALSE(ran.load());
    EXPECT_EQ(scheduler.state(stale), JobState::Failed);
    EXPECT_EQ(scheduler.stats().expired, 1u);
}

TEST(SvcScheduler, ForcedIdsReplayWithoutCollisions)
{
    ThreadPool pool(2);
    SessionScheduler scheduler(pool);

    // Journal replay resubmits under original ids; organic ids must
    // continue past the forced ones.
    const JobId forced =
        scheduler.submit([](JobId) {}, {}, /*force_id=*/7);
    EXPECT_EQ(forced, 7u);
    const JobId organic = scheduler.submit([](JobId) {});
    EXPECT_GT(organic, 7u);
    scheduler.drain();
    EXPECT_EQ(scheduler.state(7), JobState::Done);
    EXPECT_EQ(scheduler.state(organic), JobState::Done);
}

TEST(SvcScheduler, TerminalHookFiresOncePerJob)
{
    std::mutex mutex;
    std::vector<std::pair<JobId, JobState>> terminals;
    SchedulerConfig config;
    config.onTerminal = [&](JobId id, JobState state) {
        std::lock_guard<std::mutex> lock(mutex);
        terminals.emplace_back(id, state);
    };

    ThreadPool pool(2);
    SessionScheduler scheduler(pool, config);
    beer::svc::JobPolicy policy;
    policy.maxRetries = 1;

    std::atomic<int> runs{0};
    const JobId retried = scheduler.submit(
        [&](JobId) {
            if (runs.fetch_add(1) < 1)
                throw std::runtime_error("once");
        },
        policy);
    const JobId plain = scheduler.submit([](JobId) {});
    scheduler.drain();

    // Retried attempts are not terminal: exactly one hook call per
    // job, carrying the final state.
    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_EQ(terminals.size(), 2u);
    for (const auto &[id, state] : terminals) {
        EXPECT_TRUE(id == retried || id == plain);
        EXPECT_EQ(state, JobState::Done);
    }
}
