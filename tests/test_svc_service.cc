/**
 * @file
 * End-to-end tests for svc::RecoveryService: the service must recover
 * exactly the ECC function the batch beer_solve path recovers, answer
 * repeat submissions from the fingerprint cache with zero SAT solver
 * invocations, run concurrent jobs genuinely in parallel, enforce the
 * payload versioning contract, and list jobs deterministically.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include <condition_variable>
#include <mutex>
#include <sstream>
#include <string>

#include "beer/measure.hh"
#include "beer/patterns.hh"
#include "beer/profile.hh"
#include "beer/solver.hh"
#include "dram/chip.hh"
#include "dram/trace.hh"
#include "ecc/code_equiv.hh"
#include "ecc/hamming.hh"
#include "svc/service.hh"
#include "util/rng.hh"

using namespace beer;
using beer::ecc::LinearCode;
using beer::ecc::equivalent;
using beer::ecc::randomSecCode;
using beer::svc::CacheOutcome;
using beer::svc::JobState;
using beer::svc::JobStatus;
using beer::svc::RecoveryService;
using beer::svc::ServiceConfig;
using beer::svc::SubmitOptions;
using beer::svc::SubmitOutcome;
using beer::util::Rng;

namespace
{

MiscorrectionProfile
plantedProfile(const LinearCode &code,
               const std::vector<std::size_t> &charged)
{
    return exhaustiveProfile(code,
                             chargedPatternUnion(code.k(), charged));
}

} // anonymous namespace

TEST(SvcService, RecoversSameFunctionAsBatchPath)
{
    Rng rng(21);
    RecoveryService service;
    for (const std::size_t k : {8u, 16u, 32u}) {
        const LinearCode code = randomSecCode(k, rng);
        const std::size_t parity = code.numParityBits();
        const MiscorrectionProfile profile =
            plantedProfile(code, {1, 2});

        // The reference answer from the batch beer_solve path.
        const BeerSolveResult batch =
            solveForEccFunction(profile, parity);
        ASSERT_TRUE(batch.unique()) << "k=" << k;

        const SubmitOutcome outcome = service.submitProfile(profile);
        ASSERT_TRUE(outcome.accepted) << outcome.error;
        ASSERT_TRUE(service.waitForJob(outcome.id));

        const auto job = service.job(outcome.id);
        ASSERT_TRUE(job.has_value());
        EXPECT_EQ(job->state, JobState::Done);
        EXPECT_TRUE(job->succeeded) << "k=" << k;
        EXPECT_EQ(job->solutions, 1u);
        EXPECT_EQ(job->k, k);
        EXPECT_EQ(job->parityBits, parity);
        ASSERT_TRUE(job->code.has_value());
        EXPECT_TRUE(
            equivalent(*job->code, batch.solutions.front()));
        EXPECT_TRUE(equivalent(*job->code, code)) << "k=" << k;
    }
}

TEST(SvcService, RepeatSubmissionIsExactHitWithZeroSolves)
{
    Rng rng(23);
    const LinearCode code = randomSecCode(8, rng);
    const MiscorrectionProfile profile = plantedProfile(code, {1, 2});

    RecoveryService service;
    const SubmitOutcome first = service.submitProfile(profile);
    ASSERT_TRUE(first.accepted);
    ASSERT_TRUE(service.waitForJob(first.id));
    const auto cold = service.job(first.id);
    ASSERT_TRUE(cold && cold->succeeded);
    EXPECT_EQ(cold->cache, CacheOutcome::None);
    const std::uint64_t solves_after_cold = service.health().satSolves;
    EXPECT_EQ(solves_after_cold, 1u);

    const SubmitOutcome second = service.submitProfile(profile);
    ASSERT_TRUE(second.accepted);
    ASSERT_TRUE(service.waitForJob(second.id));
    const auto warm = service.job(second.id);
    ASSERT_TRUE(warm && warm->succeeded);
    EXPECT_EQ(warm->cache, CacheOutcome::Exact);
    ASSERT_TRUE(warm->code.has_value());
    EXPECT_TRUE(*warm->code == *cold->code);

    // The acceptance criterion: the repeat cost zero SAT solves.
    EXPECT_EQ(service.health().satSolves, solves_after_cold);
    EXPECT_EQ(service.health().cache.exactHits, 1u);
}

TEST(SvcService, BypassCacheSkipsLookupButStillSolves)
{
    Rng rng(29);
    const LinearCode code = randomSecCode(8, rng);
    const MiscorrectionProfile profile = plantedProfile(code, {1, 2});

    RecoveryService service;
    SubmitOptions no_cache;
    no_cache.bypassCache = true;

    const SubmitOutcome first = service.submitProfile(profile);
    ASSERT_TRUE(first.accepted);
    ASSERT_TRUE(service.waitForJob(first.id));

    const SubmitOutcome second =
        service.submitProfile(profile, no_cache);
    ASSERT_TRUE(second.accepted);
    ASSERT_TRUE(service.waitForJob(second.id));
    const auto job = service.job(second.id);
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->cache, CacheOutcome::None);
    EXPECT_EQ(service.health().satSolves, 2u);
}

TEST(SvcService, ConcurrentJobsProgressSimultaneously)
{
    Rng rng(31);
    const LinearCode code_a = randomSecCode(8, rng);
    const LinearCode code_b = randomSecCode(8, rng);

    // Both jobs must be inside their bodies at once before either may
    // proceed — deterministic proof of parallel progress.
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t started = 0;

    ServiceConfig config;
    config.threads = 2;
    config.onJobStart = [&](svc::JobId) {
        std::unique_lock<std::mutex> lock(mutex);
        ++started;
        cv.notify_all();
        cv.wait(lock, [&] { return started >= 2; });
    };
    RecoveryService service(config);

    const SubmitOutcome a =
        service.submitProfile(plantedProfile(code_a, {1, 2}));
    const SubmitOutcome b =
        service.submitProfile(plantedProfile(code_b, {1, 2}));
    ASSERT_TRUE(a.accepted);
    ASSERT_TRUE(b.accepted);
    service.drain();

    const auto health = service.health();
    EXPECT_GE(health.scheduler.peakConcurrent, 2u);
    EXPECT_EQ(health.scheduler.completed, 2u);
    EXPECT_TRUE(service.job(a.id)->succeeded);
    EXPECT_TRUE(service.job(b.id)->succeeded);
}

TEST(SvcService, PayloadVersionContract)
{
    Rng rng(37);
    const LinearCode code = randomSecCode(8, rng);
    const std::string payload =
        serializeProfile(plantedProfile(code, {1, 2}));
    ASSERT_NE(payload.find("version 2"), std::string::npos);

    RecoveryService service;

    // Current-version payload: accepted, no migration counted.
    const SubmitOutcome current = service.submitPayload(payload);
    ASSERT_TRUE(current.accepted) << current.error;
    ASSERT_TRUE(service.waitForJob(current.id));
    EXPECT_TRUE(service.job(current.id)->succeeded);
    EXPECT_EQ(service.health().legacyPayloads, 0u);

    // Legacy (version-less v1) payload: migrated and counted.
    std::string legacy = payload;
    const std::size_t pos = legacy.find("version 2\n");
    ASSERT_NE(pos, std::string::npos);
    legacy.erase(pos, std::string("version 2\n").size());
    const SubmitOutcome migrated = service.submitPayload(legacy);
    ASSERT_TRUE(migrated.accepted) << migrated.error;
    ASSERT_TRUE(service.waitForJob(migrated.id));
    EXPECT_TRUE(service.job(migrated.id)->succeeded);
    EXPECT_EQ(service.health().legacyPayloads, 1u);

    // Future version: explicit rejection, service stays alive.
    std::string future = payload;
    future.replace(future.find("version 2"),
                   std::string("version 2").size(), "version 99");
    const SubmitOutcome rejected = service.submitPayload(future);
    EXPECT_FALSE(rejected.accepted);
    EXPECT_EQ(rejected.reject, SubmitOutcome::Reject::BadPayload);
    EXPECT_NE(rejected.error.find("version"), std::string::npos);
    EXPECT_TRUE(service.health().ok);
}

TEST(SvcService, LegacyPayloadsCanBeRejectedByPolicy)
{
    Rng rng(41);
    const LinearCode code = randomSecCode(8, rng);
    std::string legacy = serializeProfile(plantedProfile(code, {1}));
    const std::size_t pos = legacy.find("version 2\n");
    ASSERT_NE(pos, std::string::npos);
    legacy.erase(pos, std::string("version 2\n").size());

    ServiceConfig config;
    config.rejectLegacyPayloads = true;
    RecoveryService service(config);
    const SubmitOutcome outcome = service.submitPayload(legacy);
    EXPECT_FALSE(outcome.accepted);
    EXPECT_EQ(outcome.reject, SubmitOutcome::Reject::BadPayload);
    EXPECT_NE(outcome.error.find("legacy"), std::string::npos);
}

TEST(SvcService, MalformedPayloadIsRejectedNotFatal)
{
    RecoveryService service;
    const SubmitOutcome outcome =
        service.submitPayload("this is not a profile");
    EXPECT_FALSE(outcome.accepted);
    EXPECT_EQ(outcome.reject, SubmitOutcome::Reject::BadPayload);
    EXPECT_FALSE(outcome.error.empty());

    const SubmitOutcome empty = service.submitProfile({});
    EXPECT_FALSE(empty.accepted);
    EXPECT_EQ(empty.reject, SubmitOutcome::Reject::BadPayload);
}

TEST(SvcService, MissingTraceFileIsRejected)
{
    RecoveryService service;
    const SubmitOutcome outcome =
        service.submitTraceFile("/nonexistent/trace.bin");
    EXPECT_FALSE(outcome.accepted);
    EXPECT_EQ(outcome.reject, SubmitOutcome::Reject::BadPayload);
}

TEST(SvcService, AcceptsBothTraceFormatsAndCountsThem)
{
    // The same measurement recorded in v1 and v2: both submissions
    // must run to the same recovered function, and the health report
    // must expose the per-format acceptance counters (the fleet's
    // v2-migration gauge). A non-trace file is rejected at submission
    // time, not by a crashing worker.
    dram::ChipConfig config = dram::makeVendorConfig('A', 8, 71);
    config.map.rows = 32;
    config.iidErrors = true;

    MeasureConfig measure;
    {
        dram::SimulatedChip probe(config);
        for (double ber : {0.1, 0.3})
            measure.pausesSeconds.push_back(
                probe.retentionModel().pauseForBitErrorRate(ber,
                                                            80.0));
    }
    measure.repeatsPerPause = 10;

    const auto tmp = std::filesystem::temp_directory_path();
    const std::string v1_path = (tmp / "beer_svc.trace").string();
    const std::string v2_path = v1_path + "2";
    for (const auto format :
         {dram::TraceFormat::V1, dram::TraceFormat::V2}) {
        dram::SimulatedChip chip(config);
        std::ofstream out(format == dram::TraceFormat::V1 ? v1_path
                                                          : v2_path,
                          std::ios::binary | std::ios::trunc);
        recordProfileTrace(chip, chargedPatterns(8, 1), measure,
                           dram::trueCellWords(chip), out,
                           {format, true});
    }

    RecoveryService service;
    const SubmitOutcome v1 = service.submitTraceFile(v1_path);
    ASSERT_TRUE(v1.accepted) << v1.error;
    const SubmitOutcome v2 = service.submitTraceFile(v2_path);
    ASSERT_TRUE(v2.accepted) << v2.error;
    ASSERT_TRUE(service.waitForJob(v1.id));
    ASSERT_TRUE(service.waitForJob(v2.id));
    EXPECT_TRUE(service.job(v1.id)->succeeded);
    EXPECT_TRUE(service.job(v2.id)->succeeded);
    EXPECT_EQ(service.job(v1.id)->codeString,
              service.job(v2.id)->codeString);

    const auto health = service.health();
    EXPECT_EQ(health.traceV1Jobs, 1u);
    EXPECT_EQ(health.traceV2Jobs, 1u);

    {
        std::ofstream out(v1_path, std::ios::trunc);
        out << "not a trace of either format\n";
    }
    const SubmitOutcome bad = service.submitTraceFile(v1_path);
    EXPECT_FALSE(bad.accepted);
    EXPECT_EQ(bad.reject, SubmitOutcome::Reject::BadPayload);
    EXPECT_NE(bad.error.find("neither"), std::string::npos);
    EXPECT_TRUE(service.health().ok);

    std::remove(v1_path.c_str());
    std::remove(v2_path.c_str());
}

TEST(SvcService, ListJobsPaginatesDeterministically)
{
    Rng rng(43);
    const LinearCode code = randomSecCode(6, rng);
    const MiscorrectionProfile profile = plantedProfile(code, {1, 2});

    RecoveryService service;
    std::vector<svc::JobId> ids;
    for (int i = 0; i < 5; ++i) {
        const SubmitOutcome outcome = service.submitProfile(profile);
        ASSERT_TRUE(outcome.accepted);
        ids.push_back(outcome.id);
    }
    service.drain();

    const auto first = service.listJobs(0, 2);
    const auto second = service.listJobs(2, 2);
    const auto tail = service.listJobs(4, 10);
    EXPECT_EQ(first.total, 5u);
    ASSERT_EQ(first.jobs.size(), 2u);
    ASSERT_EQ(second.jobs.size(), 2u);
    ASSERT_EQ(tail.jobs.size(), 1u);
    EXPECT_EQ(first.jobs[0].id, ids[0]);
    EXPECT_EQ(first.jobs[1].id, ids[1]);
    EXPECT_EQ(second.jobs[0].id, ids[2]);
    EXPECT_EQ(second.jobs[1].id, ids[3]);
    EXPECT_EQ(tail.jobs[0].id, ids[4]);
    for (const JobStatus &job : tail.jobs)
        EXPECT_EQ(job.state, JobState::Done);

    const auto past_end = service.listJobs(10, 5);
    EXPECT_EQ(past_end.total, 5u);
    EXPECT_TRUE(past_end.jobs.empty());
}

TEST(SvcService, ShutdownShedsNewWorkButStaysQueryable)
{
    Rng rng(47);
    const LinearCode code = randomSecCode(6, rng);
    const MiscorrectionProfile profile = plantedProfile(code, {1, 2});

    RecoveryService service;
    const SubmitOutcome before = service.submitProfile(profile);
    ASSERT_TRUE(before.accepted);
    service.shutdown();

    const SubmitOutcome after = service.submitProfile(profile);
    EXPECT_FALSE(after.accepted);
    EXPECT_EQ(after.reject, SubmitOutcome::Reject::Overloaded);

    // Drained on shutdown: the earlier job finished and still polls.
    const auto job = service.job(before.id);
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->state, JobState::Done);
    EXPECT_FALSE(service.health().ok);
}

namespace
{

/** Temp journal path unique to the current test. */
std::string
tempJournalPath()
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + "journal_" + info->name() + ".log";
}

/** The journal's line escaping (see service.cc). */
std::string
journalEscape(const std::string &text)
{
    std::string out;
    for (char c : text) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

/** Frame a journal record exactly as svc::JobJournal does. */
std::string
journalFrame(const std::string &payload)
{
    char crc_hex[9];
    std::snprintf(crc_hex, sizeof crc_hex, "%08x",
                  beer::svc::crc32(payload.data(), payload.size()));
    return std::string(crc_hex) + " " + payload + "\n";
}

} // anonymous namespace

TEST(SvcService, RetryPolicyRecoversFlakyJobs)
{
    Rng rng(53);
    const LinearCode code = randomSecCode(8, rng);
    const MiscorrectionProfile profile = plantedProfile(code, {1, 2});

    ServiceConfig config;
    config.jobPolicy.maxRetries = 2;
    std::atomic<int> starts{0};
    config.onJobStart = [&](svc::JobId) {
        // Fail the first two attempts: the transient-fault scenario
        // retries exist for.
        if (starts.fetch_add(1) < 2)
            throw std::runtime_error("injected transient");
    };
    RecoveryService service(config);

    const SubmitOutcome outcome = service.submitProfile(profile);
    ASSERT_TRUE(outcome.accepted);
    ASSERT_TRUE(service.waitForJob(outcome.id));

    const auto job = service.job(outcome.id);
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->state, JobState::Done);
    EXPECT_TRUE(job->succeeded);
    EXPECT_EQ(job->attempts, 3u);
    // The winning attempt wiped the earlier attempts' failure state.
    EXPECT_TRUE(job->error.empty());
    EXPECT_EQ(job->errorCode, svc::JobErrorCode::None);
    EXPECT_EQ(service.health().retries, 2u);
    EXPECT_EQ(service.health().quarantined, 0u);
}

TEST(SvcService, PersistentFailureQuarantinesWithTaxonomy)
{
    Rng rng(59);
    const LinearCode code = randomSecCode(8, rng);
    const MiscorrectionProfile profile = plantedProfile(code, {1, 2});

    ServiceConfig config;
    config.jobPolicy.maxRetries = 1;
    config.onJobStart = [](svc::JobId) {
        throw std::runtime_error("injected persistent");
    };
    RecoveryService service(config);

    const SubmitOutcome outcome = service.submitProfile(profile);
    ASSERT_TRUE(outcome.accepted);
    ASSERT_TRUE(service.waitForJob(outcome.id));

    const auto job = service.job(outcome.id);
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->state, JobState::Quarantined);
    EXPECT_EQ(job->attempts, 2u);
    EXPECT_EQ(job->error, "injected persistent");
    EXPECT_EQ(job->errorCode, svc::JobErrorCode::Internal);
    const auto health = service.health();
    EXPECT_EQ(health.retries, 1u);
    EXPECT_EQ(health.quarantined, 1u);
    EXPECT_EQ(health.jobStates.quarantined, 1u);
}

TEST(SvcService, SolveOutcomesCarryTaxonomyCodes)
{
    Rng rng(61);
    const LinearCode code = randomSecCode(8, rng);
    RecoveryService service;

    // A 1-CHARGED-only profile of a shortened code is ambiguous.
    const SubmitOutcome ambiguous =
        service.submitProfile(plantedProfile(code, {1}));
    ASSERT_TRUE(ambiguous.accepted);

    // A profile claiming a miscorrection the code space cannot
    // produce anywhere is unsatisfiable.
    MiscorrectionProfile contradictory = plantedProfile(code, {1, 2});
    for (PatternProfile &entry : contradictory.patterns)
        for (std::size_t bit = 0; bit < contradictory.k; ++bit)
            if (!patternContains(entry.pattern, bit))
                entry.miscorrectable.set(bit, true);
    const SubmitOutcome unsat =
        service.submitProfile(contradictory);
    ASSERT_TRUE(unsat.accepted);
    service.drain();

    const auto ambiguous_job = service.job(ambiguous.id);
    ASSERT_TRUE(ambiguous_job.has_value());
    EXPECT_EQ(ambiguous_job->state, JobState::Done);
    EXPECT_FALSE(ambiguous_job->succeeded);
    EXPECT_EQ(ambiguous_job->errorCode,
              svc::JobErrorCode::Ambiguous);

    const auto unsat_job = service.job(unsat.id);
    ASSERT_TRUE(unsat_job.has_value());
    EXPECT_EQ(unsat_job->state, JobState::Done);
    EXPECT_FALSE(unsat_job->succeeded);
    EXPECT_EQ(unsat_job->solutions, 0u);
    EXPECT_EQ(unsat_job->errorCode,
              svc::JobErrorCode::Unsatisfiable);
}

TEST(SvcService, JournalRecordsJobLifecycle)
{
    Rng rng(67);
    const LinearCode code = randomSecCode(8, rng);
    const MiscorrectionProfile profile = plantedProfile(code, {1, 2});
    const std::string path = tempJournalPath();
    std::remove(path.c_str());

    svc::JobId id = 0;
    {
        ServiceConfig config;
        config.journalPath = path;
        RecoveryService service(config);
        const SubmitOutcome outcome = service.submitProfile(profile);
        ASSERT_TRUE(outcome.accepted);
        id = outcome.id;
        service.shutdown();
    }

    // One submit record, one done record, nothing unfinished: a
    // restart over the same journal replays nothing. Every line is
    // CRC-framed, so the verb starts at offset 9 (8 hex + space).
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::size_t submits = 0;
    std::size_t dones = 0;
    std::string line;
    while (std::getline(in, line)) {
        ASSERT_GE(line.size(), 9u) << line;
        const std::string payload = line.substr(9);
        if (payload.rfind("submit " + std::to_string(id) + " ", 0) ==
            0)
            ++submits;
        if (payload == "done " + std::to_string(id))
            ++dones;
    }
    EXPECT_EQ(submits, 1u);
    EXPECT_EQ(dones, 1u);

    ServiceConfig config;
    config.journalPath = path;
    RecoveryService service(config);
    EXPECT_EQ(service.health().journalReplays, 0u);
    std::remove(path.c_str());
}

TEST(SvcService, ChaosFileIoLosesAndDuplicatesNoJobs)
{
    // Differential: a service journaling through recoverable file
    // chaos (EINTR + short writes) must end in exactly the state a
    // clean-I/O service would — every accepted job Done, every
    // lifecycle durable, a restart replaying nothing.
    Rng rng(73);
    const LinearCode code = randomSecCode(8, rng);
    const MiscorrectionProfile profile = plantedProfile(code, {1, 2});
    const std::string path = tempJournalPath();
    std::remove(path.c_str());

    svc::ChaosFileConfig chaos;
    chaos.seed = 1234;
    chaos.shortWriteRate = 0.3;
    chaos.eintrRate = 0.3;
    svc::ChaosFileIo chaos_io(chaos);

    std::vector<svc::JobId> accepted;
    {
        ServiceConfig config;
        config.journalPath = path;
        config.fileIo = &chaos_io;
        RecoveryService service(config);
        for (int i = 0; i < 8; ++i) {
            const SubmitOutcome outcome =
                service.submitProfile(profile);
            ASSERT_TRUE(outcome.accepted) << outcome.error;
            accepted.push_back(outcome.id);
        }
        service.drain();
        for (const svc::JobId id : accepted) {
            const auto job = service.job(id);
            ASSERT_TRUE(job.has_value());
            EXPECT_EQ(job->state, JobState::Done) << "job " << id;
            EXPECT_TRUE(job->succeeded) << "job " << id;
        }
        const auto health = service.health();
        EXPECT_EQ(health.journal.appendFailures, 0u);
        EXPECT_GT(health.journal.records, 0u);
        service.shutdown();
    }
    // The chaos really fired — this was not a clean run in disguise.
    EXPECT_GT(chaos_io.shortWrites() + chaos_io.eintrFaults(), 0u);

    // Restart over the same journal with clean I/O: nothing replays
    // (no duplicates), nothing is missing (no losses).
    ServiceConfig config;
    config.journalPath = path;
    RecoveryService service(config);
    EXPECT_EQ(service.health().journalReplays, 0u);
    EXPECT_EQ(service.health().journal.tornTail, 0u);
    EXPECT_EQ(service.health().journal.crcSkipped, 0u);
    std::remove(path.c_str());
}

TEST(SvcService, EnospcWindowRejectsSubmissionsInsteadOfLosingThem)
{
    // When the disk fills, un-journalable submissions must be refused
    // up front (the client knows and can retry) — never accepted into
    // a state a crash would silently lose.
    Rng rng(79);
    const LinearCode code = randomSecCode(8, rng);
    const MiscorrectionProfile profile = plantedProfile(code, {1, 2});
    const std::string path = tempJournalPath();
    std::remove(path.c_str());

    svc::ChaosFileConfig chaos;
    chaos.seed = 2;
    chaos.enospcAfterWrites = 1;   // first append lands...
    chaos.enospcWindow = 1000000;  // ...then the disk stays full
    svc::ChaosFileIo chaos_io(chaos);

    ServiceConfig config;
    config.journalPath = path;
    config.fileIo = &chaos_io;
    RecoveryService service(config);

    const SubmitOutcome first = service.submitProfile(profile);
    ASSERT_TRUE(first.accepted) << first.error;

    const SubmitOutcome second = service.submitProfile(profile);
    EXPECT_FALSE(second.accepted);
    EXPECT_EQ(second.reject, SubmitOutcome::Reject::Overloaded);
    EXPECT_NE(second.error.find("journal"), std::string::npos)
        << second.error;
    EXPECT_GT(chaos_io.enospcFaults(), 0u);

    // The accepted job still runs to completion, and the failure is
    // visible on the health surface.
    service.drain();
    EXPECT_TRUE(service.job(first.id)->succeeded);
    EXPECT_GT(service.health().journal.appendFailures, 0u);
    service.shutdown();
    std::remove(path.c_str());
}

TEST(SvcService, TornTerminalRecordReplaysJobInsteadOfLosingIt)
{
    // A crash can tear the done-record off the end of the journal.
    // The job's terminal state is then unproven, so a restart must
    // re-run it (at-least-once execution) rather than drop it — the
    // no-lost-jobs half of the crash contract.
    Rng rng(83);
    const LinearCode code = randomSecCode(8, rng);
    const MiscorrectionProfile profile = plantedProfile(code, {1, 2});
    const std::string path = tempJournalPath();

    {
        std::ofstream out(path, std::ios::trunc);
        const std::string payload =
            journalEscape(serializeProfile(profile));
        out << journalFrame("submit 4 profile 0 0 " + payload);
        const std::string done = journalFrame("done 4");
        out << done.substr(0, done.size() / 2); // torn mid-append
    }

    ServiceConfig config;
    config.journalPath = path;
    RecoveryService service(config);
    EXPECT_EQ(service.health().journalReplays, 1u);
    EXPECT_EQ(service.health().journal.tornTail, 1u);
    ASSERT_TRUE(service.waitForJob(4));
    const auto job = service.job(4);
    ASSERT_TRUE(job.has_value());
    EXPECT_TRUE(job->succeeded);
    service.drain();
    std::remove(path.c_str());
}

TEST(SvcService, JournalReplayResumesUnfinishedJobs)
{
    Rng rng(71);
    const LinearCode code = randomSecCode(8, rng);
    const MiscorrectionProfile profile = plantedProfile(code, {1, 2});
    const std::string path = tempJournalPath();

    // Hand-craft a crashed service's journal: job 3 finished, job 5
    // was still queued when the process died.
    {
        std::ofstream out(path, std::ios::trunc);
        const std::string payload =
            journalEscape(serializeProfile(profile));
        out << journalFrame("submit 3 profile 0 0 " + payload);
        out << journalFrame("done 3");
        out << journalFrame("submit 5 profile 0 0 " + payload);
    }

    ServiceConfig config;
    config.journalPath = path;
    RecoveryService service(config);

    // Only the unfinished job replays, under its original id.
    EXPECT_EQ(service.health().journalReplays, 1u);
    ASSERT_TRUE(service.waitForJob(5));
    const auto job = service.job(5);
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->state, JobState::Done);
    EXPECT_TRUE(job->succeeded);
    ASSERT_TRUE(job->code.has_value());
    EXPECT_TRUE(equivalent(*job->code, code));
    // The finished job did not replay...
    EXPECT_FALSE(service.job(3).has_value());
    // ...and organic ids continue past the journaled ones.
    const SubmitOutcome organic = service.submitProfile(profile);
    ASSERT_TRUE(organic.accepted);
    EXPECT_GT(organic.id, 5u);
    service.drain();
    std::remove(path.c_str());
}
