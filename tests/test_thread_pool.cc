/**
 * @file
 * Tests for util::ThreadPool: full coverage of the index space, reuse
 * across jobs, degenerate sizes, and concurrent mutation safety.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

#include "util/thread_pool.hh"

using beer::util::ThreadPool;

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallelFor(kCount, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ReusableAcrossJobs)
{
    ThreadPool pool(3);
    for (int round = 0; round < 50; ++round) {
        std::atomic<std::size_t> sum{0};
        pool.parallelFor(100, [&](std::size_t i) { sum += i; });
        EXPECT_EQ(sum.load(), 100u * 99u / 2);
    }
}

TEST(ThreadPool, SingleThreadAndEmptyJobs)
{
    ThreadPool serial(1);
    EXPECT_EQ(serial.size(), 1u);
    std::size_t ran = 0;
    serial.parallelFor(0, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran, 0u);
    serial.parallelFor(7, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran, 7u);
}

TEST(ThreadPool, MoreThreadsThanWork)
{
    ThreadPool pool(8);
    EXPECT_EQ(pool.size(), 8u);
    std::vector<std::atomic<int>> hits(3);
    pool.parallelFor(3, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.size(), 1u);
    std::atomic<std::size_t> count{0};
    pool.parallelFor(64, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 64u);
}

TEST(ThreadPool, DisjointShardWritesNeedNoSynchronization)
{
    // The simulation engine's usage pattern: each item writes its own
    // slot of a pre-sized vector.
    ThreadPool pool(4);
    std::vector<std::size_t> results(257, 0);
    pool.parallelFor(results.size(),
                     [&](std::size_t i) { results[i] = i * i; });
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i], i * i);
}
