/**
 * @file
 * Tests for util::ThreadPool: full coverage of the index space, reuse
 * across jobs, degenerate sizes, concurrent mutation safety, and the
 * async task queue with its observability counters.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hh"

using beer::util::ThreadPool;

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallelFor(kCount, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ReusableAcrossJobs)
{
    ThreadPool pool(3);
    for (int round = 0; round < 50; ++round) {
        std::atomic<std::size_t> sum{0};
        pool.parallelFor(100, [&](std::size_t i) { sum += i; });
        EXPECT_EQ(sum.load(), 100u * 99u / 2);
    }
}

TEST(ThreadPool, SingleThreadAndEmptyJobs)
{
    ThreadPool serial(1);
    EXPECT_EQ(serial.size(), 1u);
    std::size_t ran = 0;
    serial.parallelFor(0, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran, 0u);
    serial.parallelFor(7, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran, 7u);
}

TEST(ThreadPool, MoreThreadsThanWork)
{
    ThreadPool pool(8);
    EXPECT_EQ(pool.size(), 8u);
    std::vector<std::atomic<int>> hits(3);
    pool.parallelFor(3, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.size(), 1u);
    std::atomic<std::size_t> count{0};
    pool.parallelFor(64, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 64u);
}

TEST(ThreadPool, SubmitRunsTasksAndCountsThem)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.queuedTasks(), 0u);
    EXPECT_EQ(pool.activeTasks(), 0u);
    EXPECT_EQ(pool.completedTasks(), 0u);

    constexpr std::size_t kTasks = 64;
    std::atomic<std::size_t> ran{0};
    std::mutex mutex;
    std::condition_variable done;
    for (std::size_t i = 0; i < kTasks; ++i)
        pool.submit([&] {
            if (ran.fetch_add(1) + 1 == kTasks) {
                std::lock_guard<std::mutex> lock(mutex);
                done.notify_all();
            }
        });
    std::unique_lock<std::mutex> lock(mutex);
    done.wait(lock, [&] { return ran.load() == kTasks; });

    // Once the last task has run, every counter must settle: the
    // notifying task may still be inside the pool's bookkeeping, so
    // poll completedTasks briefly instead of asserting instantly.
    while (pool.completedTasks() < kTasks)
        std::this_thread::yield();
    EXPECT_EQ(pool.completedTasks(), kTasks);
    EXPECT_EQ(pool.queuedTasks(), 0u);
    EXPECT_EQ(pool.activeTasks(), 0u);
}

TEST(ThreadPool, TaskCountersObserveQueuedAndActiveStates)
{
    // One worker (size 2 = worker + caller): gate the first task so a
    // second submission is observably queued behind it.
    ThreadPool pool(2);
    std::mutex mutex;
    std::condition_variable cv;
    bool release = false;
    bool started = false;

    pool.submit([&] {
        std::unique_lock<std::mutex> lock(mutex);
        started = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
    });
    pool.submit([] {});

    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return started; });
    }
    EXPECT_EQ(pool.activeTasks(), 1u);
    EXPECT_EQ(pool.queuedTasks(), 1u);
    EXPECT_EQ(pool.completedTasks(), 0u);

    {
        std::lock_guard<std::mutex> lock(mutex);
        release = true;
    }
    cv.notify_all();
    while (pool.completedTasks() < 2)
        std::this_thread::yield();
    EXPECT_EQ(pool.queuedTasks(), 0u);
    EXPECT_EQ(pool.activeTasks(), 0u);
}

TEST(ThreadPool, SubmitRunsInlineWithoutWorkers)
{
    ThreadPool pool(1);
    bool ran = false;
    pool.submit([&] { ran = true; });
    EXPECT_TRUE(ran);
    EXPECT_EQ(pool.completedTasks(), 1u);
}

TEST(ThreadPool, SubmitCoexistsWithParallelFor)
{
    ThreadPool pool(4);
    std::atomic<std::size_t> taskRuns{0};
    for (std::size_t i = 0; i < 16; ++i)
        pool.submit([&] { ++taskRuns; });

    // parallelFor takes priority but must not lose queued tasks.
    std::atomic<std::size_t> sum{0};
    pool.parallelFor(100, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 100u * 99u / 2);

    while (pool.completedTasks() < 16)
        std::this_thread::yield();
    EXPECT_EQ(taskRuns.load(), 16u);
}

TEST(ThreadPool, DisjointShardWritesNeedNoSynchronization)
{
    // The simulation engine's usage pattern: each item writes its own
    // slot of a pre-sized vector.
    ThreadPool pool(4);
    std::vector<std::size_t> results(257, 0);
    pool.parallelFor(results.size(),
                     [&](std::size_t i) { results[i] = i * i; });
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i], i * i);
}

TEST(ThreadPool, ClaimableTaskRunsSynchronouslyOnWorkerlessPool)
{
    // size()==1 pools have no workers: submit() executes inline, so
    // the task has already run (exactly once) when the constructor
    // returns, and join() only observes the completion.
    ThreadPool pool(1);
    std::atomic<int> runs{0};
    beer::util::ClaimableTask task(pool, [&] { ++runs; });
    EXPECT_TRUE(task.active());
    EXPECT_TRUE(task.ready());
    EXPECT_FALSE(task.join());
    EXPECT_EQ(runs.load(), 1);
    EXPECT_FALSE(task.active());
    // Idempotent: a second join neither blocks nor re-runs.
    EXPECT_FALSE(task.join());
    EXPECT_EQ(runs.load(), 1);
}

TEST(ThreadPool, ClaimableTaskJoinRunsInlineWhenWorkersAreBusy)
{
    // Pin the only worker, then join an unclaimed task: join() must
    // execute it on the calling thread (this is what makes pipelined
    // sessions deadlock-free on a saturated service pool) and report
    // the inline execution.
    ThreadPool pool(2);
    std::mutex mutex;
    std::condition_variable cv;
    bool release = false;
    pool.submit([&] {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return release; });
    });
    std::atomic<int> runs{0};
    beer::util::ClaimableTask task(pool, [&] { ++runs; });
    EXPECT_TRUE(task.join());
    EXPECT_EQ(runs.load(), 1);
    {
        std::lock_guard<std::mutex> lock(mutex);
        release = true;
    }
    cv.notify_all();
    while (pool.completedTasks() < 2)
        std::this_thread::yield();
}

TEST(ThreadPool, ClaimableTaskWorkerClaimObservableThroughReady)
{
    ThreadPool pool(2);
    std::atomic<int> runs{0};
    beer::util::ClaimableTask task(pool, [&] { ++runs; });
    while (!task.ready())
        std::this_thread::yield();
    // The worker ran it; join() must not execute it again.
    EXPECT_FALSE(task.join());
    EXPECT_EQ(runs.load(), 1);
}

TEST(ThreadPool, ClaimableTaskJoinRethrowsTaskException)
{
    ThreadPool pool(1);
    beer::util::ClaimableTask task(
        pool, [] { throw std::runtime_error("solver exploded"); });
    EXPECT_THROW(task.join(), std::runtime_error);
}

TEST(ThreadPool, ClaimableTaskCancelBeforeClaimSkipsExecution)
{
    // Queue the task behind a blocker so no worker reaches it, then
    // cancel: the function must never run.
    ThreadPool pool(2);
    std::mutex mutex;
    std::condition_variable cv;
    bool release = false;
    pool.submit([&] {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return release; });
    });
    std::atomic<int> runs{0};
    beer::util::ClaimableTask task(pool, [&] { ++runs; });
    task.cancel();
    {
        std::lock_guard<std::mutex> lock(mutex);
        release = true;
    }
    cv.notify_all();
    while (pool.completedTasks() < 2)
        std::this_thread::yield();
    EXPECT_EQ(runs.load(), 0);
    EXPECT_FALSE(task.active());
}

TEST(ThreadPool, DefaultClaimableTaskIsInert)
{
    beer::util::ClaimableTask task;
    EXPECT_FALSE(task.active());
    EXPECT_FALSE(task.ready());
    EXPECT_FALSE(task.join());
}

TEST(ThreadPool, BackgroundPoolRunsAllPrimitives)
{
    // Idle scheduling priority (best effort; silently a no-op on
    // non-Linux hosts) must not change any observable behavior.
    ThreadPool pool(3, /*background=*/true);
    std::atomic<std::size_t> sum{0};
    pool.parallelFor(100, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 100u * 99u / 2);

    std::atomic<int> runs{0};
    beer::util::ClaimableTask task(pool, [&] { ++runs; });
    task.join();
    EXPECT_EQ(runs.load(), 1);
}
