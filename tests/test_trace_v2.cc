/**
 * @file
 * Tests for the v2 binary columnar trace format: batched operations
 * collapse to single records, v1 <-> v2 conversion is lossless (byte-
 * identical v1 round trips, bit-identical replayed counts), corrupted
 * or truncated v2 files are rejected with diagnostics, divergence
 * messages name the expected and requested operations, and the planar
 * replay fast path is invariant under thread count and batch shape.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "beer/beer.hh"
#include "beer/measure.hh"
#include "dram/chip.hh"
#include "dram/fault_proxy.hh"
#include "dram/trace.hh"
#include "util/thread_pool.hh"

using namespace beer;
using beer::dram::ChipConfig;
using beer::dram::makeVendorConfig;
using beer::dram::SimulatedChip;
using beer::dram::TraceFormat;
using beer::dram::TraceRecord;
using beer::dram::TraceRecorder;
using beer::dram::TraceReplayBackend;
using beer::dram::TraceWriteOptions;

namespace
{

ChipConfig
testChipConfig(char vendor, std::size_t k, std::uint64_t seed)
{
    ChipConfig config = makeVendorConfig(vendor, k, seed);
    config.map.rows = 32;
    config.iidErrors = true;
    return config;
}

MeasureConfig
fastMeasure(const SimulatedChip &chip)
{
    MeasureConfig measure;
    measure.pausesSeconds.clear();
    for (double ber : {0.1, 0.3})
        measure.pausesSeconds.push_back(
            chip.retentionModel().pauseForBitErrorRate(ber, 80.0));
    measure.repeatsPerPause = 10;
    measure.thresholdProbability = 1e-4;
    return measure;
}

bool
sameCounts(const ProfileCounts &a, const ProfileCounts &b)
{
    return a.k == b.k && a.patterns == b.patterns &&
           a.errorCounts == b.errorCounts &&
           a.wordsTested == b.wordsTested &&
           a.disagreements == b.disagreements &&
           a.votesSpent == b.votesSpent;
}

/** Record one measurement in the requested format, returning (live
 * counts, serialized trace bytes). Fresh chips with the same config
 * are deterministic, so repeated calls observe identical errors. */
std::pair<ProfileCounts, std::string>
recordMeasurement(char vendor, std::size_t k, std::uint64_t seed,
                  const TraceWriteOptions &options)
{
    SimulatedChip chip(testChipConfig(vendor, k, seed));
    const MeasureConfig measure = fastMeasure(chip);
    const auto words = dram::trueCellWords(chip);
    const auto patterns = chargedPatterns(k, 1);
    std::ostringstream out;
    const ProfileCounts live = recordProfileTrace(
        chip, patterns, measure, words, out, options);
    return {live, out.str()};
}

/** Forwards only the scalar MemoryInterface seams to the wrapped
 * backend, so the base class's loop defaults consume its batch
 * records element by element — proving batch boundaries are not part
 * of the replay contract. */
class ScalarOnly : public dram::MemoryInterface
{
  public:
    explicit ScalarOnly(dram::MemoryInterface &inner) : inner_(inner) {}
    const dram::AddressMap &addressMap() const override
    {
        return inner_.addressMap();
    }
    std::size_t datawordBits() const override
    {
        return inner_.datawordBits();
    }
    void writeDataword(std::size_t word, const gf2::BitVec &d) override
    {
        inner_.writeDataword(word, d);
    }
    gf2::BitVec readDataword(std::size_t word) override
    {
        return inner_.readDataword(word);
    }
    void writeByte(std::size_t addr, std::uint8_t value) override
    {
        inner_.writeByte(addr, value);
    }
    std::uint8_t readByte(std::size_t addr) override
    {
        return inner_.readByte(addr);
    }
    void fill(std::uint8_t value) override { inner_.fill(value); }
    void pauseRefresh(double seconds, double temp_c) override
    {
        inner_.pauseRefresh(seconds, temp_c);
    }

  private:
    dram::MemoryInterface &inner_;
};

} // anonymous namespace

TEST(TraceV2, BatchedOpsCollapseToSingleRecords)
{
    // The same measurement recorded in both formats: v1 keeps one text
    // line per word (ops == elements), v2 stores one record per
    // broadcast/batch, and both replay to identical counts.
    const auto [live_v1, v1_bytes] = recordMeasurement(
        'A', 8, 41, {TraceFormat::V1, true});
    const auto [live_v2, v2_bytes] = recordMeasurement(
        'A', 8, 41, {TraceFormat::V2, true});
    ASSERT_TRUE(sameCounts(live_v1, live_v2))
        << "chip construction is not deterministic";

    std::istringstream v1_in(v1_bytes);
    std::istringstream v2_in(v2_bytes);
    TraceReplayBackend v1_trace(v1_in);
    TraceReplayBackend v2_trace(v2_in);
    EXPECT_EQ(v1_trace.format(), TraceFormat::V1);
    EXPECT_EQ(v2_trace.format(), TraceFormat::V2);

    // Element-granular op counts agree; the v2 record list is far
    // shorter because each batch is one record.
    EXPECT_EQ(v1_trace.totalOps(), v2_trace.totalOps());
    EXPECT_LT(v2_trace.records().size(), v1_trace.totalOps() / 8);
    bool saw_broadcast = false;
    bool saw_batch = false;
    for (const TraceRecord &rec : v2_trace.records()) {
        if (rec.kind == TraceRecord::Kind::WriteBroadcast &&
            rec.count > 1)
            saw_broadcast = true;
        if (rec.kind == TraceRecord::Kind::ReadBatch && rec.count > 1) {
            saw_batch = true;
            EXPECT_NE(rec.frame, nullptr);
            EXPECT_EQ(rec.laneWords, (rec.count + 63) / 64);
        }
    }
    EXPECT_TRUE(saw_broadcast);
    EXPECT_TRUE(saw_batch);

    const ProfileCounts from_v1 = replayProfileTrace(v1_trace);
    const ProfileCounts from_v2 = replayProfileTrace(v2_trace);
    EXPECT_TRUE(v1_trace.atEnd());
    EXPECT_TRUE(v2_trace.atEnd());
    EXPECT_TRUE(sameCounts(live_v1, from_v1));
    EXPECT_TRUE(sameCounts(live_v1, from_v2));

    // v2 is dramatically smaller (the tentpole claim; CI benches the
    // exact ratio, this is the correctness floor).
    EXPECT_LT(v2_bytes.size() * 10, v1_bytes.size());
}

TEST(TraceV2, RoundTripsToByteIdenticalV1)
{
    // v1 -> v2 -> v1 must reproduce recorder-produced v1 files byte
    // for byte, across all three vendor styles (the Figure-3 chips).
    const auto tmp = std::filesystem::temp_directory_path();
    for (char vendor : {'A', 'B', 'C'}) {
        const auto [live, v1_text] = recordMeasurement(
            vendor, 8, 40 + (std::uint64_t)vendor,
            {TraceFormat::V1, true});

        const std::string v1_path =
            (tmp / (std::string("beer_rt_") + vendor + ".trace"))
                .string();
        const std::string v2_path = v1_path + "2";
        const std::string rt_path = v1_path + ".rt";
        {
            std::ofstream out(v1_path, std::ios::binary);
            out << v1_text;
        }
        dram::convertTraceFile(v1_path, v2_path,
                               {TraceFormat::V2, true});
        dram::convertTraceFile(v2_path, rt_path,
                               {TraceFormat::V1, true});

        std::ifstream rt(rt_path, std::ios::binary);
        std::stringstream rt_text;
        rt_text << rt.rdbuf();
        EXPECT_EQ(rt_text.str(), v1_text) << "vendor " << vendor;

        TraceReplayBackend converted(v2_path);
        EXPECT_EQ(converted.format(), TraceFormat::V2);
        EXPECT_TRUE(sameCounts(live, replayProfileTrace(converted)))
            << "vendor " << vendor;
        for (const std::string &p : {v1_path, v2_path, rt_path})
            std::remove(p.c_str());
    }
}

TEST(TraceV2, QuorumMetaSurvivesConversion)
{
    // An adaptive-quorum measurement under injected read noise: the
    // escalation schedule is seeded from trace meta, so conversion
    // must preserve it exactly — disagreements and votes spent replay
    // bit-identically from the v2 rendering, and the v1 round trip of
    // the recording is byte-identical.
    SimulatedChip chip(testChipConfig('B', 8, 37));
    dram::FaultInjectionConfig chaos;
    chaos.transientFlipRate = 2e-3;
    chaos.seed = 71;
    dram::FaultInjectionProxy proxy(chip, chaos);

    MeasureConfig mc = fastMeasure(chip);
    mc.repeatsPerPause = 15;
    mc.quorum.votes = 3;
    mc.quorum.escalatedVotes = 7;
    mc.quorum.adaptive = true;
    mc.quorum.initialEstimate = 0.01;

    const auto patterns = chargedPatterns(8, 1);
    const auto words = dram::trueCellWords(chip);
    std::ostringstream recorded;
    const ProfileCounts live = recordProfileTrace(
        proxy, patterns, mc, words, recorded, {TraceFormat::V1, true});
    ASSERT_GT(live.totalDisagreements(), 0u)
        << "noise too weak to exercise the adaptive path";

    const auto tmp = std::filesystem::temp_directory_path();
    const std::string v1_path = (tmp / "beer_quorum.trace").string();
    const std::string v2_path = v1_path + "2";
    const std::string rt_path = v1_path + ".rt";
    {
        std::ofstream out(v1_path, std::ios::binary);
        out << recorded.str();
    }
    dram::convertTraceFile(v1_path, v2_path, {TraceFormat::V2, true});
    dram::convertTraceFile(v2_path, rt_path, {TraceFormat::V1, true});

    std::ifstream rt(rt_path, std::ios::binary);
    std::stringstream rt_text;
    rt_text << rt.rdbuf();
    EXPECT_EQ(rt_text.str(), recorded.str());

    TraceReplayBackend trace(v2_path);
    const ProfileCounts replayed = replayProfileTrace(trace);
    EXPECT_TRUE(trace.atEnd());
    EXPECT_TRUE(sameCounts(live, replayed));
    for (const std::string &p : {v1_path, v2_path, rt_path})
        std::remove(p.c_str());
}

TEST(TraceV2, PlanarReplayIsThreadCountInvariant)
{
    // The sharded planar counting fast path promises bit-identical
    // counts at every thread count (integer adds commute).
    const auto [live, v2_bytes] = recordMeasurement(
        'C', 16, 67, {TraceFormat::V2, true});
    for (std::size_t threads : {0, 1, 2, 3}) {
        std::istringstream in(v2_bytes);
        TraceReplayBackend trace(in);
        ProfileCounts replayed;
        if (threads == 1) {
            replayed = replayProfileTrace(trace);
        } else {
            util::ThreadPool pool(threads);
            replayed = replayProfileTrace(trace, &pool);
        }
        EXPECT_TRUE(trace.atEnd()) << threads << " threads";
        EXPECT_TRUE(sameCounts(live, replayed))
            << threads << " threads";
    }
}

TEST(TraceV2, UncompressedFramesReplayIdentically)
{
    const auto [live, raw_bytes] = recordMeasurement(
        'A', 8, 41, {TraceFormat::V2, false});
    const auto [live2, sparse_bytes] = recordMeasurement(
        'A', 8, 41, {TraceFormat::V2, true});
    ASSERT_TRUE(sameCounts(live, live2));
    // Sparse frames only ever shrink the file.
    EXPECT_LE(sparse_bytes.size(), raw_bytes.size());
    std::istringstream in(raw_bytes);
    TraceReplayBackend trace(in);
    EXPECT_TRUE(sameCounts(live, replayProfileTrace(trace)));
}

TEST(TraceV2, ScalarReplayOfBatchedRecordsMatches)
{
    // Batch boundaries are not part of the replay contract: a consumer
    // that only ever issues scalar reads/writes must replay a batched
    // v2 trace to the same counts.
    const auto [live, v2_bytes] = recordMeasurement(
        'A', 8, 41, {TraceFormat::V2, true});
    SimulatedChip shape(testChipConfig('A', 8, 41));

    std::istringstream in(v2_bytes);
    TraceReplayBackend trace(in);
    ScalarOnly scalar(trace);
    const ProfileCounts replayed = measureProfile(
        scalar, chargedPatterns(8, 1), fastMeasure(shape),
        dram::trueCellWords(shape));
    EXPECT_TRUE(trace.atEnd());
    EXPECT_TRUE(sameCounts(live, replayed));
}

TEST(TraceV2Death, DivergenceNamesExpectedAndRequestedOps)
{
    // Strict-mismatch errors must say what the replayer asked for AND
    // what the trace recorded, with operands, so a mismatched
    // experiment script is debuggable from the message alone.
    for (TraceFormat format : {TraceFormat::V1, TraceFormat::V2}) {
        SimulatedChip chip(testChipConfig('A', 8, 53));
        std::ostringstream out;
        {
            TraceRecorder recorder(chip, out, {format, true});
            const gf2::BitVec ones = gf2::BitVec::ones(8);
            recorder.writeDataword(3, ones);
            (void)recorder.readDataword(3);
        }
        const std::string bytes = out.str();

        // Wrong operation kind: read where a write was recorded.
        {
            std::istringstream in(bytes);
            TraceReplayBackend trace(in);
            EXPECT_DEATH(
                (void)trace.readDataword(3),
                "diverged at.*requested readDataword\\(word 3.*"
                "records writeDataword\\(word 3, data 11111111");
        }
        // Wrong operand: write of the wrong pattern.
        {
            std::istringstream in(bytes);
            TraceReplayBackend trace(in);
            EXPECT_DEATH(
                trace.writeDataword(3, gf2::BitVec(8)),
                "diverged at.*requested writeDataword\\(word 3, "
                "data 00000000.*records writeDataword\\(word 3, "
                "data 11111111");
        }
        // Exhaustion past the end.
        {
            std::istringstream in(bytes);
            TraceReplayBackend trace(in);
            const gf2::BitVec ones = gf2::BitVec::ones(8);
            trace.writeDataword(3, ones);
            (void)trace.readDataword(3);
            EXPECT_DEATH((void)trace.readDataword(3),
                         "requested but the trace is exhausted "
                         "after 2 operations");
        }
    }
}

TEST(TraceV2Death, BatchDivergenceReportsElementPosition)
{
    SimulatedChip chip(testChipConfig('A', 8, 53));
    std::ostringstream out;
    {
        TraceRecorder recorder(chip, out, {TraceFormat::V2, true});
        const std::size_t words[] = {0, 1, 2};
        recorder.writeDatawordsBroadcast(words, 3,
                                         gf2::BitVec::ones(8));
    }
    std::istringstream in(out.str());
    TraceReplayBackend trace(in);
    trace.writeDataword(0, gf2::BitVec::ones(8));
    EXPECT_DEATH(
        trace.writeDataword(5, gf2::BitVec::ones(8)),
        "requested writeDataword\\(word 5.*records "
        "writeDatawordsBroadcast element 2/3 \\(word 1");
}

TEST(TraceV2Death, CorruptedReadFrameIsRejectedAtLoad)
{
    // Flip one bit inside the last read frame: the CRC check must
    // refuse the file before any replay happens. Raw (uncompressed)
    // frames make the frame bytes' location deterministic — the last
    // record's payload tail.
    SimulatedChip chip(testChipConfig('A', 8, 53));
    std::ostringstream out;
    {
        TraceRecorder recorder(chip, out, {TraceFormat::V2, false});
        const std::size_t words[] = {0, 1, 2};
        std::vector<gf2::BitVec> read;
        recorder.writeDatawordsBroadcast(words, 3,
                                         gf2::BitVec::ones(8));
        recorder.readDatawords(words, 3, read);
    }
    std::string bytes = out.str();
    bytes[bytes.size() - 1] ^= 0x01; // last byte of the raw frame
    EXPECT_DEATH(
        {
            std::istringstream in(bytes);
            TraceReplayBackend trace(in);
        },
        "read-frame CRC mismatch.*corrupted trace");
}

TEST(TraceV2Death, TruncatedTraceIsRejectedAtLoad)
{
    SimulatedChip chip(testChipConfig('A', 8, 53));
    std::ostringstream out;
    {
        TraceRecorder recorder(chip, out, {TraceFormat::V2, true});
        recorder.writeDataword(0, gf2::BitVec::ones(8));
        recorder.pauseRefresh(60.0, 80.0);
    }
    const std::string bytes = out.str();
    // Chop mid-payload and mid-record-header; both must be caught.
    EXPECT_DEATH(
        {
            std::istringstream in(bytes.substr(0, bytes.size() - 5));
            TraceReplayBackend trace(in);
        },
        "trace v2: (record .* overruns the file|truncated header)");
    EXPECT_DEATH(
        {
            std::istringstream in(bytes.substr(0, bytes.size() - 14));
            TraceReplayBackend trace(in);
        },
        "trace v2: (record .* overruns the file|truncated header)");
}

TEST(TraceV2, FormatSniffingAndNames)
{
    EXPECT_EQ(dram::parseTraceFormat("v1"), TraceFormat::V1);
    EXPECT_EQ(dram::parseTraceFormat("2"), TraceFormat::V2);
    EXPECT_FALSE(dram::parseTraceFormat("v3").has_value());
    EXPECT_STREQ(dram::traceFormatName(TraceFormat::V1), "v1");
    EXPECT_STREQ(dram::traceFormatName(TraceFormat::V2), "v2");

    const auto tmp = std::filesystem::temp_directory_path();
    const std::string path = (tmp / "beer_sniff.trace").string();
    const auto [live, v2_bytes] = recordMeasurement(
        'A', 8, 41, {TraceFormat::V2, true});
    {
        std::ofstream out(path, std::ios::binary);
        out << v2_bytes;
    }
    EXPECT_EQ(dram::tryTraceFileFormat(path), TraceFormat::V2);
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << "# comment\nbeertrace 1\n";
    }
    EXPECT_EQ(dram::tryTraceFileFormat(path), TraceFormat::V1);
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << "not a trace at all\n";
    }
    EXPECT_FALSE(dram::tryTraceFileFormat(path).has_value());
    std::remove(path.c_str());
}
