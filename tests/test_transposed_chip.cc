/**
 * @file
 * Differential suite for the transposed (bit-plane) chip storage.
 *
 * ChipStorage::Scalar — the legacy one-BitVec-per-word layout — is
 * the behavioral reference: with the same configuration and seed (and
 * skip-sampled injection, the mode whose Rng stream is layout-
 * independent), a transposed chip must be externally indistinguishable
 * from a scalar one. The suite pins
 *
 *  - pauseRefresh error patterns (iid, repeatable per-cell, and VRT
 *    modes) cell for cell via storedCodeword;
 *  - reads — sequential readDataword, batched readDatawords, and the
 *    transient-noise Rng stream shared by both;
 *  - the byte read-modify-write path (which must not scrub errors);
 *  - measureProfile counts, including SIMD-backend and thread-count
 *    invariance and trace record/replay round-trips;
 *  - the beep::MemoryWordUnderTest adapter;
 *
 * against the scalar chip for every byte-aligned word size, and the
 * TransposedCellStore itself against a scalar BitVec model for the
 * non-byte-aligned codes (k = 4, 57) a chip's address map cannot
 * host. Bernoulli-mask injection draws a different (plane-major) Rng
 * stream by design, so its tests assert backend/thread invariance and
 * distribution, not pattern equality with skip-sampling.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <sstream>
#include <vector>

#include "beep/beep.hh"
#include "beep/word_under_test.hh"
#include "beer/measure.hh"
#include "beer/patterns.hh"
#include "dram/cell_store.hh"
#include "dram/chip.hh"
#include "dram/trace.hh"
#include "ecc/hamming.hh"
#include "util/rng.hh"
#include "util/simd.hh"

using namespace beer;
using dram::CellType;
using dram::ChipConfig;
using dram::ChipStorage;
using dram::InjectionMode;
using dram::makeVendorConfig;
using dram::SimulatedChip;
using dram::TransposedCellStore;
using gf2::BitVec;
using util::Rng;
using util::simd::Backend;

namespace
{

/** Chip-hostable word sizes (the address map is byte-granular). */
constexpr std::size_t kChipWordSizes[] = {8, 16, 32};

/** Store-level word sizes, including the non-byte-aligned ones. */
constexpr std::size_t kStoreWordSizes[] = {4, 8, 16, 32, 57};

/**
 * Vendor-@p vendor chip crossing lane-word boundaries: 101 rows x 2
 * words = 202 words (three full uint64 lanes plus a 10-word tail).
 */
ChipConfig
diffConfig(char vendor, std::size_t k, std::uint64_t seed)
{
    ChipConfig config = makeVendorConfig(vendor, k, seed);
    config.map.rows = 101;
    return config;
}

BitVec
randomData(std::size_t k, Rng &rng)
{
    BitVec data(k);
    for (std::size_t i = 0; i < k; ++i)
        data.set(i, rng.bernoulli(0.5));
    return data;
}

/** Program every word with a (deterministic) per-word random value. */
void
scatterWrite(SimulatedChip &chip, std::uint64_t seed)
{
    Rng rng(seed);
    for (std::size_t w = 0; w < chip.numWords(); ++w)
        chip.writeDataword(w, randomData(chip.datawordBits(), rng));
}

/** All storedCodeword views of two chips agree. */
void
expectSameCells(SimulatedChip &a, SimulatedChip &b)
{
    ASSERT_EQ(a.numWords(), b.numWords());
    for (std::size_t w = 0; w < a.numWords(); ++w)
        ASSERT_EQ(a.storedCodeword(w), b.storedCodeword(w))
            << "word " << w;
}

bool
countsEqual(const ProfileCounts &a, const ProfileCounts &b)
{
    return a.k == b.k && a.patterns == b.patterns &&
           a.errorCounts == b.errorCounts &&
           a.wordsTested == b.wordsTested;
}

} // anonymous namespace

// ---- store-level differential (covers k the chip cannot host) ------

TEST(TransposedStore, GatherScatterRoundTripsEveryWordSize)
{
    for (const std::size_t k : kStoreWordSizes) {
        Rng rng(0x5709 + k);
        const ecc::LinearCode code = ecc::randomSecCode(k, rng);
        const std::size_t n = code.n();
        const std::size_t num_words = 203;
        // Anti cells in every fourth word to exercise the anti mask.
        TransposedCellStore store(num_words, n, [](std::size_t w) {
            return w % 4 == 3 ? CellType::Anti : CellType::True;
        });

        std::vector<BitVec> model(num_words);
        for (std::size_t w = 0; w < num_words; ++w) {
            model[w] = code.encode(randomData(k, rng));
            store.writeWord(w, model[w]);
        }
        for (std::size_t w = 0; w < num_words; ++w) {
            ASSERT_EQ(store.storedWord(w), model[w]) << "word " << w;
            const bool anti = w % 4 == 3;
            for (std::size_t pos = 0; pos < n; ++pos)
                ASSERT_EQ(store.chargedBit(w, pos),
                          model[w].get(pos) != anti)
                    << "word " << w << " pos " << pos;
        }

        // decayBit flips exactly the addressed cell.
        store.decayBit(7, n / 2);
        BitVec flipped = model[7];
        flipped.flip(n / 2);
        EXPECT_EQ(store.storedWord(7), flipped);
        EXPECT_EQ(store.storedWord(8), model[8]);
    }
}

TEST(TransposedStore, DeterministicDecayMatchesScalarModel)
{
    for (const std::size_t k : kStoreWordSizes) {
        Rng rng(0xdead + k);
        const ecc::LinearCode code = ecc::randomSecCode(k, rng);
        const std::size_t n = code.n();
        const std::size_t num_words = 130;
        auto type_of = [](std::size_t w) {
            return w % 3 == 1 ? CellType::Anti : CellType::True;
        };
        TransposedCellStore store(num_words, n, type_of);
        std::vector<BitVec> model(num_words);
        for (std::size_t w = 0; w < num_words; ++w) {
            model[w] = code.encode(randomData(k, rng));
            store.writeWord(w, model[w]);
        }

        // A pure predicate of the cell id, like retention + VRT.
        auto fails = [](std::uint64_t cell_id) {
            std::uint64_t x = cell_id * 0x9e3779b97f4a7c15ULL;
            x ^= x >> 33;
            return (x & 7) == 0;
        };

        // Scalar reference: word-major loop over CHARGED cells.
        std::uint64_t expected_errors = 0;
        for (std::size_t w = 0; w < num_words; ++w) {
            const bool anti = type_of(w) == CellType::Anti;
            for (std::size_t pos = 0; pos < n; ++pos) {
                if (model[w].get(pos) == anti)
                    continue; // DISCHARGED
                if (fails((std::uint64_t)w * n + pos)) {
                    model[w].flip(pos);
                    ++expected_errors;
                }
            }
        }

        const std::uint64_t errors =
            store.decayDeterministic(0, num_words, fails);
        EXPECT_EQ(errors, expected_errors);
        for (std::size_t w = 0; w < num_words; ++w)
            ASSERT_EQ(store.storedWord(w), model[w])
                << "k " << k << " word " << w;
    }
}

TEST(TransposedStore, SkipSampledDecayMatchesScalarModel)
{
    for (const std::size_t k : kStoreWordSizes) {
        Rng rng(0xface + k);
        const ecc::LinearCode code = ecc::randomSecCode(k, rng);
        const std::size_t n = code.n();
        const std::size_t num_words = 130;
        TransposedCellStore store(num_words, n, [](std::size_t) {
            return CellType::True;
        });
        std::vector<BitVec> model(num_words);
        for (std::size_t w = 0; w < num_words; ++w) {
            model[w] = code.encode(randomData(k, rng));
            store.writeWord(w, model[w]);
        }

        // Scalar reference: same sampler over the same word-major
        // grid, consuming an identically seeded Rng.
        const double ber = 0.07;
        Rng store_rng(99);
        Rng model_rng(99);
        std::uint64_t expected_errors = 0;
        const util::GeometricSampler candidates(ber);
        candidates.forEach(
            model_rng, (std::uint64_t)num_words * n,
            [&](std::uint64_t cell) {
                const std::size_t w = (std::size_t)(cell / n);
                const std::size_t pos = (std::size_t)(cell % n);
                if (model[w].get(pos)) { // CHARGED (all true cells)
                    model[w].flip(pos);
                    ++expected_errors;
                }
            });

        const std::uint64_t errors =
            store.decaySkipSampled(0, num_words, ber, store_rng);
        EXPECT_EQ(errors, expected_errors);
        EXPECT_GT(errors, 0u);
        for (std::size_t w = 0; w < num_words; ++w)
            ASSERT_EQ(store.storedWord(w), model[w])
                << "k " << k << " word " << w;
    }
}

TEST(TransposedStore, BernoulliDecayOnlyFlipsChargedCells)
{
    Rng rng(0xb00);
    const ecc::LinearCode code = ecc::randomSecCode(16, rng);
    const std::size_t n = code.n();
    const std::size_t num_words = 203;
    TransposedCellStore store(num_words, n, [](std::size_t w) {
        return w % 2 ? CellType::Anti : CellType::True;
    });
    std::vector<BitVec> before(num_words);
    for (std::size_t w = 0; w < num_words; ++w) {
        before[w] = code.encode(randomData(16, rng));
        store.writeWord(w, before[w]);
    }

    Rng decay_rng(4242);
    const std::uint64_t errors =
        store.decayBernoulli(0, num_words, 0.2, decay_rng);
    EXPECT_GT(errors, 0u);

    std::uint64_t flipped = 0;
    for (std::size_t w = 0; w < num_words; ++w) {
        const bool anti = w % 2;
        const BitVec after = store.storedWord(w);
        for (std::size_t pos = 0; pos < n; ++pos) {
            if (after.get(pos) == before[w].get(pos))
                continue;
            ++flipped;
            // Only CHARGED cells may decay, and decay discharges.
            EXPECT_EQ(before[w].get(pos), !anti)
                << "word " << w << " pos " << pos;
        }
    }
    EXPECT_EQ(flipped, errors);
}

TEST(TransposedStore, BernoulliDecayMatchesItsRate)
{
    Rng rng(0xbe5);
    const std::size_t n = 39;
    const std::size_t num_words = 640;
    TransposedCellStore store(num_words, n, [](std::size_t) {
        return CellType::True;
    });
    // Every cell CHARGED: each of the num_words * n cells is an
    // independent Bernoulli(p) trial.
    store.broadcastWriteAll(BitVec::ones(n));

    const double p = 0.1;
    const double total = (double)num_words * n;
    const std::uint64_t errors =
        store.decayBernoulli(0, num_words, p, rng);
    // 5 sigma around the binomial mean.
    const double sigma = std::sqrt(total * p * (1.0 - p));
    EXPECT_NEAR((double)errors, total * p, 5.0 * sigma);

    // Degenerate rates draw nothing from the Rng stream.
    TransposedCellStore empty(128, 8, [](std::size_t) {
        return CellType::True;
    });
    empty.broadcastWriteAll(BitVec::ones(8));
    Rng no_draws(1);
    EXPECT_EQ(empty.decayBernoulli(0, 128, 0.0, no_draws), 0u);
    EXPECT_EQ(empty.decayBernoulli(0, 128, 1.0, no_draws),
              (std::uint64_t)128 * 8);
    Rng untouched(1);
    EXPECT_EQ(no_draws.next(), untouched.next());
}

// ---- chip-level differential (transposed vs scalar storage) --------

TEST(TransposedChip, IidPauseRefreshMatchesScalarStorage)
{
    for (const std::size_t k : kChipWordSizes) {
        for (const char vendor : {'A', 'C'}) {
            ChipConfig config = diffConfig(vendor, k, 0x11 + k);
            config.iidErrors = true;
            config.injection = InjectionMode::SkipSample;

            ChipConfig scalar = config;
            scalar.storage = ChipStorage::Scalar;
            SimulatedChip ref(scalar);
            SimulatedChip transposed(config);

            scatterWrite(ref, 7);
            scatterWrite(transposed, 7);
            const double pause =
                ref.retentionModel().pauseForBitErrorRate(0.05, 80.0);
            for (int round = 0; round < 3; ++round) {
                ref.pauseRefresh(pause, 80.0);
                transposed.pauseRefresh(pause, 80.0);
            }
            EXPECT_GT(ref.rawErrorCount(), 0u);
            EXPECT_EQ(ref.rawErrorCount(), transposed.rawErrorCount());
            expectSameCells(ref, transposed);
        }
    }
}

TEST(TransposedChip, RepeatableAndVrtPauseRefreshMatchesScalarStorage)
{
    for (const std::size_t k : kChipWordSizes) {
        for (const char vendor : {'A', 'C'}) {
            ChipConfig config = diffConfig(vendor, k, 0x22 + k);
            config.iidErrors = false;
            config.vrtRate = 0.01;
            config.threads = 4;

            ChipConfig scalar = config;
            scalar.storage = ChipStorage::Scalar;
            SimulatedChip ref(scalar);
            SimulatedChip transposed(config);

            scatterWrite(ref, 13);
            scatterWrite(transposed, 13);
            const double pause =
                ref.retentionModel().pauseForBitErrorRate(0.1, 80.0);
            // Distinct pause epochs select distinct VRT subsets; both
            // layouts must track them.
            for (int round = 0; round < 3; ++round) {
                ref.pauseRefresh(pause, 80.0);
                transposed.pauseRefresh(pause, 80.0);
            }
            EXPECT_GT(ref.rawErrorCount(), 0u);
            EXPECT_EQ(ref.rawErrorCount(), transposed.rawErrorCount());
            expectSameCells(ref, transposed);
        }
    }
}

TEST(TransposedChip, ReadsMatchScalarStorageIncludingNoiseStream)
{
    for (const std::size_t k : kChipWordSizes) {
        ChipConfig config = diffConfig('A', k, 0x33 + k);
        config.iidErrors = true;
        config.injection = InjectionMode::SkipSample;
        config.transientErrorRate = 0.01;

        ChipConfig scalar = config;
        scalar.storage = ChipStorage::Scalar;
        SimulatedChip ref(scalar);
        SimulatedChip batched(config);
        SimulatedChip sequential(config);

        const double pause =
            ref.retentionModel().pauseForBitErrorRate(0.05, 80.0);
        for (SimulatedChip *chip : {&ref, &batched, &sequential}) {
            scatterWrite(*chip, 29);
            chip->pauseRefresh(pause, 80.0);
        }

        std::vector<std::size_t> words(ref.numWords());
        for (std::size_t w = 0; w < words.size(); ++w)
            words[w] = w;
        std::vector<BitVec> batch;
        batched.readDatawords(words.data(), words.size(), batch);
        ASSERT_EQ(batch.size(), words.size());
        for (std::size_t w = 0; w < words.size(); ++w) {
            // One noise stream, three consumers: the scalar chip, the
            // transposed batched read, and the transposed sequential
            // read must all produce the same noisy results.
            const BitVec expected = ref.readDataword(w);
            ASSERT_EQ(batch[w], expected) << "k " << k << " word " << w;
            ASSERT_EQ(sequential.readDataword(w), expected)
                << "k " << k << " word " << w;
        }
    }
}

TEST(TransposedChip, ShardedNoiseFreeReadsMatchSequential)
{
    ChipConfig config = diffConfig('A', 16, 0x44);
    config.iidErrors = true;
    config.injection = InjectionMode::SkipSample;
    config.threads = 4;
    SimulatedChip chip(config);
    scatterWrite(chip, 31);
    chip.pauseRefresh(
        chip.retentionModel().pauseForBitErrorRate(0.1, 80.0), 80.0);

    // Unsorted word list: batching must preserve input order.
    std::vector<std::size_t> words;
    for (std::size_t w = chip.numWords(); w-- > 0;)
        words.push_back(w);
    std::vector<BitVec> batch;
    chip.readDatawords(words.data(), words.size(), batch);
    ASSERT_EQ(batch.size(), words.size());
    for (std::size_t i = 0; i < words.size(); ++i)
        ASSERT_EQ(batch[i], chip.readDataword(words[i]))
            << "word " << words[i];
}

TEST(TransposedChip, ByteInterfaceMatchesScalarStorage)
{
    ChipConfig config = diffConfig('C', 16, 0x55);
    config.iidErrors = true;
    config.injection = InjectionMode::SkipSample;

    ChipConfig scalar = config;
    scalar.storage = ChipStorage::Scalar;
    SimulatedChip ref(scalar);
    SimulatedChip transposed(config);

    // Inject errors first: the byte read-modify-write path must merge
    // raw data without scrubbing them, identically in both layouts.
    for (SimulatedChip *chip : {&ref, &transposed}) {
        chip->fill(0xFF);
        chip->pauseRefresh(
            chip->retentionModel().pauseForBitErrorRate(0.1, 80.0),
            80.0);
    }
    Rng rng(71);
    for (int i = 0; i < 200; ++i) {
        const std::size_t addr = rng.below(ref.numBytes());
        const auto value = (std::uint8_t)rng.below(256);
        ref.writeByte(addr, value);
        transposed.writeByte(addr, value);
    }
    for (std::size_t addr = 0; addr < ref.numBytes(); ++addr)
        ASSERT_EQ(ref.readByte(addr), transposed.readByte(addr))
            << "byte " << addr;
    expectSameCells(ref, transposed);
}

TEST(TransposedChip, BroadcastWriteMatchesPerWordWrites)
{
    ChipConfig config = diffConfig('A', 8, 0x66);
    SimulatedChip broadcast(config);
    SimulatedChip loop(config);

    // Error state on both chips; the broadcast must clear it only on
    // the written words.
    for (SimulatedChip *chip : {&broadcast, &loop}) {
        chip->fill(0xFF);
        chip->pauseRefresh(
            chip->retentionModel().pauseForBitErrorRate(0.2, 80.0),
            80.0);
    }
    expectSameCells(broadcast, loop);

    std::vector<std::size_t> words;
    for (std::size_t w = 0; w < broadcast.numWords(); w += 3)
        words.push_back(w);
    Rng data_rng(5);
    const BitVec data = randomData(8, data_rng);
    broadcast.writeDatawordsBroadcast(words.data(), words.size(), data);
    for (const std::size_t w : words)
        loop.writeDataword(w, data);
    expectSameCells(broadcast, loop);
}

TEST(TransposedChip, MeasureProfileMatchesScalarStorage)
{
    for (const std::size_t k : kChipWordSizes) {
        ChipConfig config = diffConfig('A', k, 0x77 + k);
        config.iidErrors = true;
        config.injection = InjectionMode::SkipSample;

        MeasureConfig measure;
        measure.pausesSeconds.clear();
        measure.repeatsPerPause = 3;
        const auto patterns = chargedPatternUnion(k, {1, 2});

        ChipConfig scalar = config;
        scalar.storage = ChipStorage::Scalar;
        SimulatedChip ref_chip(scalar);
        for (double ber : {0.05, 0.15})
            measure.pausesSeconds.push_back(
                ref_chip.retentionModel().pauseForBitErrorRate(ber,
                                                               80.0));
        const ProfileCounts ref =
            measureProfile(ref_chip, patterns, measure);
        EXPECT_GT(ref.totalObservations(), 0u);

        // The transposed chip must reproduce the counts for every
        // SIMD width and thread count (portable fallbacks make the
        // sweep meaningful on any host).
        for (const Backend backend :
             {Backend::U64x1, Backend::U64x2, Backend::U64x4,
              Backend::U64x8}) {
            for (const std::size_t threads : {1u, 4u}) {
                ChipConfig wide = config;
                wide.simdBackend = backend;
                wide.threads = threads;
                SimulatedChip chip(wide);
                const ProfileCounts counts =
                    measureProfile(chip, patterns, measure);
                EXPECT_TRUE(countsEqual(ref, counts))
                    << "k " << k << " backend " << (int)backend
                    << " threads " << threads;
            }
        }
    }
}

TEST(TransposedChip, BernoulliInjectionIsBackendAndThreadInvariant)
{
    const std::size_t k = 16;
    ChipConfig config = diffConfig('A', k, 0x88);
    config.iidErrors = true;
    config.injection = InjectionMode::BernoulliMask;

    MeasureConfig measure;
    measure.pausesSeconds.assign(
        1, config.retention.pauseForBitErrorRate(0.1, 80.0));
    const auto patterns = chargedPatterns(k, 1);

    std::optional<ProfileCounts> ref;
    for (const Backend backend :
         {Backend::U64x1, Backend::U64x2, Backend::U64x4,
          Backend::U64x8}) {
        for (const std::size_t threads : {1u, 4u}) {
            ChipConfig run = config;
            run.simdBackend = backend;
            run.threads = threads;
            SimulatedChip chip(run);
            const ProfileCounts counts =
                measureProfile(chip, patterns, measure);
            if (!ref) {
                EXPECT_GT(counts.totalObservations(), 0u);
                ref = counts;
                continue;
            }
            EXPECT_TRUE(countsEqual(*ref, counts))
                << "backend " << (int)backend << " threads "
                << threads;
        }
    }
}

TEST(TransposedChip, TraceRecordReplayRoundTripsAcrossStorage)
{
    const std::size_t k = 16;
    ChipConfig config = diffConfig('A', k, 0x99);
    config.iidErrors = true;
    config.injection = InjectionMode::SkipSample;

    const auto patterns = chargedPatterns(k, 1);
    MeasureConfig measure;
    measure.repeatsPerPause = 2;

    // Record the same measurement against both layouts: because the
    // batched seams are observationally identical to per-word loops,
    // the recorded traces must match byte for byte.
    auto record = [&](ChipStorage storage, std::ostream &out) {
        ChipConfig run = config;
        run.storage = storage;
        SimulatedChip chip(run);
        measure.pausesSeconds.assign(
            1,
            chip.retentionModel().pauseForBitErrorRate(0.08, 80.0));
        return recordProfileTrace(chip, patterns, measure, {}, out);
    };
    std::ostringstream scalar_trace;
    const ProfileCounts scalar_counts =
        record(ChipStorage::Scalar, scalar_trace);
    std::ostringstream transposed_trace;
    const ProfileCounts transposed_counts =
        record(ChipStorage::Transposed, transposed_trace);
    EXPECT_TRUE(countsEqual(scalar_counts, transposed_counts));
    EXPECT_EQ(scalar_trace.str(), transposed_trace.str());

    // And the recorded trace replays to the recorded counts.
    std::istringstream in(transposed_trace.str());
    dram::TraceReplayBackend replay(in);
    const ProfileCounts replayed = replayProfileTrace(replay);
    EXPECT_TRUE(countsEqual(transposed_counts, replayed));
}

TEST(TransposedChip, BeepAdapterMatchesScalarStorage)
{
    // BEEP drives one chip word through write/pause/read cycles; over
    // a transposed chip the profiler must identify the exact same
    // error cells as over the scalar reference.
    ChipConfig config = diffConfig('A', 16, 0xAA);
    config.iidErrors = false;
    config.seed = 17;

    beep::BeepConfig beep_config;
    beep_config.passes = 2;
    beep_config.readsPerPattern = 4;
    beep_config.seed = 11;

    auto profile = [&](ChipStorage storage) {
        ChipConfig run = config;
        run.storage = storage;
        SimulatedChip chip(run);
        const double pause =
            chip.retentionModel().pauseForBitErrorRate(0.15, 80.0);
        beep::MemoryWordUnderTest word(chip, /*word_index=*/3, pause,
                                       80.0);
        beep::Profiler profiler(chip.groundTruthCode(), beep_config);
        return profiler.profile(word);
    };
    const auto ref = profile(ChipStorage::Scalar);
    const auto transposed = profile(ChipStorage::Transposed);
    EXPECT_EQ(ref.errorCells, transposed.errorCells);
    EXPECT_EQ(ref.reads, transposed.reads);
    EXPECT_EQ(ref.informativeReads, transposed.informativeReads);
}

TEST(TransposedChip, AutoInjectionTracksTheCrossoverConstant)
{
    // Auto must resolve to skip-sampling below the measured crossover
    // and Bernoulli masks above it; pinning the mode reproduces each.
    const std::size_t k = 8;
    ChipConfig config = diffConfig('A', k, 0xBB);
    config.iidErrors = true;

    auto errorsAt = [&](InjectionMode mode, double ber) {
        ChipConfig run = config;
        run.injection = mode;
        SimulatedChip chip(run);
        chip.fill(0xFF);
        chip.pauseRefresh(
            chip.retentionModel().pauseForBitErrorRate(ber, 80.0),
            80.0);
        return chip.rawErrorCount();
    };
    const double low = dram::kInjectionCrossoverBer / 2.0;
    const double high = dram::kInjectionCrossoverBer * 2.0;
    EXPECT_EQ(errorsAt(InjectionMode::Auto, low),
              errorsAt(InjectionMode::SkipSample, low));
    EXPECT_EQ(errorsAt(InjectionMode::Auto, high),
              errorsAt(InjectionMode::BernoulliMask, high));
}

TEST(TransposedChip, DuplicateWordsInNoisyBatchMatchSequentialReads)
{
    // A batched read list may name the same word twice; with
    // transient noise each occurrence must draw its own flips and
    // decode independently, exactly like sequential readDataword
    // calls (regression: duplicates once shared one perturbed window
    // copy, accumulating both words' flips before a single decode).
    ChipConfig config = diffConfig('A', 16, 0xCC);
    config.iidErrors = true;
    config.injection = InjectionMode::SkipSample;
    config.transientErrorRate = 0.05;

    SimulatedChip batched(config);
    SimulatedChip sequential(config);
    const double pause =
        batched.retentionModel().pauseForBitErrorRate(0.05, 80.0);
    for (SimulatedChip *chip : {&batched, &sequential}) {
        scatterWrite(*chip, 37);
        chip->pauseRefresh(pause, 80.0);
    }

    // Heavy duplication inside and across lane-word windows.
    const std::vector<std::size_t> words = {5, 5, 5, 70, 5, 70, 130,
                                            5, 130, 130, 0, 5};
    std::vector<BitVec> batch;
    batched.readDatawords(words.data(), words.size(), batch);
    ASSERT_EQ(batch.size(), words.size());
    for (std::size_t t = 0; t < words.size(); ++t)
        ASSERT_EQ(batch[t], sequential.readDataword(words[t]))
            << "read " << t << " (word " << words[t] << ")";
}
