/**
 * @file
 * Tests for the two-level (on-die SEC + rank-level SEC-DED) stack:
 * the Son et al. interference effect and the BEER-enabled co-design
 * procedure of Section 7.2.1.
 */

#include <gtest/gtest.h>

#include "ecc/hamming.hh"
#include "ecc/two_level.hh"
#include "util/rng.hh"

using namespace beer::ecc;
using beer::gf2::BitVec;
using beer::util::Rng;

namespace
{

TwoLevelStack
makeStack(std::size_t inner_k, Rng &rng)
{
    const LinearCode inner = randomSecCode(inner_k, rng);
    HazardReport report;
    const SecDedCode outer = coDesignOuterCode(inner, 1, rng, &report);
    return TwoLevelStack(inner, outer);
}

} // anonymous namespace

TEST(TwoLevel, CleanPathPreservesData)
{
    Rng rng(3);
    const TwoLevelStack stack = makeStack(22, rng);
    BitVec data(stack.dataBits());
    for (std::size_t i = 0; i < data.size(); ++i)
        data.set(i, rng.bernoulli(0.5));
    EXPECT_EQ(stack.runWord(data, BitVec(stack.cellBits())),
              StackOutcome::Correct);
}

TEST(TwoLevel, SingleRawErrorAlwaysCorrect)
{
    // One raw error is corrected by the inner SEC before the outer
    // code ever sees it.
    Rng rng(5);
    const TwoLevelStack stack = makeStack(22, rng);
    const BitVec data(stack.dataBits());
    for (std::size_t pos = 0; pos < stack.cellBits(); ++pos) {
        BitVec errors(stack.cellBits());
        errors.set(pos, true);
        EXPECT_EQ(stack.runWord(data, errors), StackOutcome::Correct)
            << pos;
    }
}

TEST(TwoLevel, OuterAloneDetectsAllDoubleErrors)
{
    Rng rng(7);
    const TwoLevelStack stack = makeStack(22, rng);
    const BitVec data(stack.dataBits());
    const HazardReport report =
        enumerateDoubleErrorOutcomesOuterOnly(stack.outer, data);
    EXPECT_EQ(report.detected, report.patterns);
    EXPECT_EQ(report.silentCorruption, 0u);
}

TEST(TwoLevel, InnerMiscorrectionsCreateSilentCorruption)
{
    // The interference effect: with the inner SEC in the path, some
    // double raw errors become silent corruption (Son et al.).
    Rng rng(9);
    bool interference_seen = false;
    for (int round = 0; round < 5 && !interference_seen; ++round) {
        const TwoLevelStack stack = makeStack(22, rng);
        const BitVec data(stack.dataBits());
        const HazardReport report =
            enumerateDoubleErrorOutcomes(stack, data);
        EXPECT_EQ(report.patterns,
                  stack.cellBits() * (stack.cellBits() - 1) / 2);
        if (report.silentCorruption > 0)
            interference_seen = true;
    }
    EXPECT_TRUE(interference_seen);
}

TEST(TwoLevel, OutcomeHistogramIsComplete)
{
    Rng rng(11);
    const TwoLevelStack stack = makeStack(16, rng);
    const BitVec data(stack.dataBits());
    const HazardReport report = enumerateDoubleErrorOutcomes(stack, data);
    EXPECT_EQ(report.correct + report.correctedByOuter +
                  report.detected + report.silentCorruption,
              report.patterns);
}

TEST(TwoLevel, CoDesignReducesSilentCorruption)
{
    // Best-of-N outer codes must be at least as good as best-of-1,
    // and across several inner functions strictly better somewhere.
    Rng rng(13);
    bool strictly_better = false;
    for (int round = 0; round < 4; ++round) {
        const LinearCode inner = randomSecCode(22, rng);

        Rng rng_a(1000 + round);
        HazardReport one;
        coDesignOuterCode(inner, 1, rng_a, &one);

        Rng rng_b(1000 + round);
        HazardReport best;
        coDesignOuterCode(inner, 24, rng_b, &best);

        EXPECT_LE(best.silentCorruption, one.silentCorruption);
        if (best.silentCorruption < one.silentCorruption)
            strictly_better = true;
    }
    EXPECT_TRUE(strictly_better);
}

TEST(TwoLevel, MismatchedSizesAreFatal)
{
    Rng rng(15);
    const LinearCode inner = randomSecCode(22, rng);
    const SecDedCode outer = SecDedCode::minimal(4); // n = 8 != 22
    EXPECT_DEATH(
        { TwoLevelStack stack(inner, outer); }, "must equal");
}
