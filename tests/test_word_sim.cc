/**
 * @file
 * Tests for the EINSim-like Monte-Carlo word simulator, including the
 * skip-sampling machinery that makes Figure 1's 1e9-word runs cheap.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "beer/profile.hh"
#include "dram/types.hh"
#include "ecc/hamming.hh"
#include "sim/word_sim.hh"
#include "util/rng.hh"

using namespace beer::sim;
using beer::dram::CellType;
using beer::ecc::LinearCode;
using beer::ecc::paperExampleCode;
using beer::ecc::randomSecCode;
using beer::gf2::BitVec;
using beer::util::Rng;

TEST(WordSim, ZeroRateProducesNoErrors)
{
    Rng rng(1);
    const LinearCode code = paperExampleCode();
    const auto stats = simulateUniformErrors(
        code, BitVec::fromString("1010"), 0.0, 1000, rng);
    EXPECT_EQ(stats.wordsSimulated, 1000u);
    EXPECT_EQ(stats.wordsWithRawErrors, 0u);
    for (auto count : stats.postCorrectionErrors)
        EXPECT_EQ(count, 0u);
}

TEST(WordSim, RawErrorRateMatchesRequested)
{
    Rng rng(3);
    const LinearCode code = randomSecCode(32, rng);
    const double rber = 1e-3;
    const std::uint64_t words = 2000000;
    const auto stats = simulateUniformErrors(
        code, BitVec(32), rber, words, rng);

    std::uint64_t raw_total = 0;
    for (auto count : stats.preCorrectionErrors)
        raw_total += count;
    const double measured =
        (double)raw_total / ((double)words * (double)code.n());
    EXPECT_NEAR(measured / rber, 1.0, 0.05);
}

TEST(WordSim, SkipSamplingMatchesTheoryForErrorFreeWords)
{
    Rng rng(5);
    const LinearCode code = randomSecCode(16, rng);
    const double rber = 1e-4;
    const std::uint64_t words = 1000000;
    const auto stats =
        simulateUniformErrors(code, BitVec(16), rber, words, rng);
    const double expect_any =
        1.0 - std::pow(1.0 - rber, (double)code.n());
    EXPECT_NEAR((double)stats.wordsWithRawErrors / (double)words,
                expect_any, expect_any * 0.1);
}

TEST(WordSim, SingleErrorsAlwaysCorrected)
{
    // At very low RBER essentially all erroneous words hold exactly
    // one error, which SEC always corrects: post-correction errors
    // are dominated by multi-error words and are far rarer.
    Rng rng(7);
    const LinearCode code = randomSecCode(32, rng);
    const auto stats = simulateUniformErrors(
        code, BitVec(32), 1e-4, 10000000, rng);

    const auto corrected =
        stats.outcomes[(std::size_t)beer::ecc::DecodeOutcome::Corrected];
    std::uint64_t uncorrectable = 0;
    for (auto outcome :
         {beer::ecc::DecodeOutcome::PartialCorrection,
          beer::ecc::DecodeOutcome::Miscorrection,
          beer::ecc::DecodeOutcome::SilentCorruption,
          beer::ecc::DecodeOutcome::DetectedUncorrectable}) {
        uncorrectable += stats.outcomes[(std::size_t)outcome];
    }
    EXPECT_GT(corrected, 0u);
    EXPECT_GT(uncorrectable, 0u);
    EXPECT_GT(corrected, uncorrectable * 100);
}

TEST(WordSim, ChargedMaskTrueAndAntiCells)
{
    const BitVec codeword = BitVec::fromString("1010011");
    EXPECT_EQ(chargedMask(codeword, CellType::True).toString(),
              "1010011");
    EXPECT_EQ(chargedMask(codeword, CellType::Anti).toString(),
              "0101100");
}

TEST(WordSim, RetentionErrorsRestrictedToChargedCells)
{
    Rng rng(9);
    const LinearCode code = randomSecCode(16, rng);
    BitVec data(16);
    data.set(3, true);
    data.set(9, true);
    const BitVec codeword = code.encode(data);
    const BitVec mask = chargedMask(codeword, CellType::True);

    const auto stats = simulateRetentionErrors(code, codeword, mask,
                                               0.3, 100000, rng);
    // Raw errors may only appear inside the charged mask.
    for (std::size_t pos = 0; pos < code.n(); ++pos) {
        if (!mask.get(pos)) {
            EXPECT_EQ(stats.preCorrectionErrors[pos], 0u) << pos;
        }
    }
    // With BER 0.3 the charged cells must all have failed sometimes.
    for (std::size_t pos : mask.support())
        EXPECT_GT(stats.preCorrectionErrors[pos], 0u) << pos;
}

TEST(WordSim, AllDischargedWordNeverFails)
{
    Rng rng(11);
    const LinearCode code = randomSecCode(8, rng);
    const BitVec codeword = code.encode(BitVec(8));
    ASSERT_TRUE(codeword.isZero());
    const auto stats = simulateRetentionErrors(
        code, codeword, chargedMask(codeword, CellType::True), 0.5,
        10000, rng);
    EXPECT_EQ(stats.wordsWithRawErrors, 0u);
}

TEST(WordSim, PostCorrectionErrorsOnlyAtMiscorrectableBits)
{
    // For a 1-CHARGED pattern, observed post-correction errors in
    // DISCHARGED data bits must be exactly the profile-predicted
    // miscorrectable set (given enough samples).
    Rng rng(13);
    const LinearCode code = randomSecCode(11, rng);
    for (std::size_t charged = 0; charged < 11; ++charged) {
        BitVec data(11);
        data.set(charged, true);
        const BitVec codeword = code.encode(data);
        const BitVec mask = chargedMask(codeword, CellType::True);
        const auto stats = simulateRetentionErrors(code, codeword, mask,
                                                   0.5, 20000, rng);
        for (std::size_t bit = 0; bit < 11; ++bit) {
            if (bit == charged)
                continue;
            const bool observed = stats.postCorrectionErrors[bit] > 0;
            const bool possible = beer::miscorrectionPossible(
                code, {charged}, bit);
            EXPECT_EQ(observed, possible)
                << "charged=" << charged << " bit=" << bit;
        }
    }
}

TEST(WordSim, StatsMerge)
{
    Rng rng(15);
    const LinearCode code = paperExampleCode();
    auto a = simulateUniformErrors(code, BitVec(4), 0.01, 10000, rng);
    const auto b =
        simulateUniformErrors(code, BitVec(4), 0.01, 20000, rng);
    const auto a_words = a.wordsSimulated;
    a.merge(b);
    EXPECT_EQ(a.wordsSimulated, a_words + b.wordsSimulated);
}
