/**
 * @file
 * Generate a miscorrection profile for a random (or canonical) SEC
 * Hamming code, in the beer_solve file format. Useful for testing
 * beer_solve pipelines end-to-end and for producing reference
 * profiles:
 *
 *     beer_profile_gen --k 16 --seed 7 | beer_solve
 */

#include <cstdio>
#include <iostream>

#include "beer/profile.hh"
#include "ecc/hamming.hh"
#include "util/cli.hh"
#include "util/rng.hh"

using namespace beer;

int
main(int argc, char **argv)
{
    util::Cli cli("Generate a ground-truth miscorrection profile for a "
                  "SEC Hamming code (beer_solve input format)");
    cli.addOption("k", "16", "dataword length in bits");
    cli.addOption("charged", "1,2",
                  "x-CHARGED pattern classes (comma-separated)");
    cli.addOption("seed", "1", "RNG seed (0 = canonical code)");
    cli.addFlag("print-code", "also print H to stderr");
    cli.parse(argc, argv);

    const auto k = (std::size_t)cli.getInt("k");
    const auto seed = (std::uint64_t)cli.getInt("seed");

    std::vector<std::size_t> charged_counts;
    {
        std::string text = cli.getString("charged");
        std::size_t pos = 0;
        while (pos < text.size()) {
            std::size_t next = text.find(',', pos);
            if (next == std::string::npos)
                next = text.size();
            charged_counts.push_back((std::size_t)std::stoul(
                text.substr(pos, next - pos)));
            pos = next + 1;
        }
    }

    ecc::LinearCode code = [&] {
        if (seed == 0)
            return ecc::canonicalSecCode(k);
        util::Rng rng(seed);
        return ecc::randomSecCode(k, rng);
    }();

    if (cli.getBool("print-code"))
        std::fprintf(stderr, "H = [P | I]:\n%s", code.toString().c_str());

    const auto patterns = chargedPatternUnion(k, charged_counts);
    const auto profile = exhaustiveProfile(code, patterns);
    std::cout << serializeProfile(profile);
    return 0;
}
