/**
 * @file
 * Generate a miscorrection profile for a random (or canonical) SEC
 * Hamming code, in the beer_solve file format. Useful for testing
 * beer_solve pipelines end-to-end and for producing reference
 * profiles:
 *
 *     beer_profile_gen --k 16 --seed 7 | beer_solve
 *
 * With --trace-out, the tool instead simulates a vendor-style chip
 * with the secret code and records the raw measurement operation
 * stream (dram/trace.hh format), exercising the trace-replay path:
 *
 *     beer_profile_gen --k 16 --seed 7 --vendor A --trace-out m.trace
 *     beer_solve --trace m.trace
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "beer/measure.hh"
#include "beer/profile.hh"
#include "dram/chip.hh"
#include "ecc/hamming.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/signal.hh"

using namespace beer;

int
main(int argc, char **argv)
{
    util::Cli cli("Generate a ground-truth miscorrection profile for a "
                  "SEC Hamming code (beer_solve input format)");
    cli.addOption("k", "16", "dataword length in bits");
    cli.addOption("charged", "1,2",
                  "x-CHARGED pattern classes (comma-separated)");
    cli.addOption("seed", "1", "RNG seed (0 = canonical code)");
    cli.addOption("trace-out", "",
                  "record a simulated measurement trace to this file "
                  "instead of printing an exhaustive profile");
    cli.addOption("trace-format", "v2",
                  "trace format for --trace-out: v2 (binary columnar) "
                  "or v1 (legacy text)");
    cli.addOption("vendor", "A",
                  "simulated chip style for --trace-out (A, B, or C)");
    cli.addOption("rows", "64", "simulated chip rows for --trace-out");
    cli.addOption("repeats", "25",
                  "repeats per refresh pause for --trace-out");
    cli.addOption("threads", "1",
                  "chip retention-injection threads for --trace-out "
                  "(0 = all hardware threads); traces are identical "
                  "for every value");
    cli.addFlag("print-code", "also print H to stderr");
    cli.parse(argc, argv);

    // Trace recording sweeps many pause/repeat rounds; let Ctrl-C end
    // it at a pattern boundary with the rounds measured so far.
    util::installShutdownHandler();

    const auto k = (std::size_t)cli.getInt("k");
    const auto seed = (std::uint64_t)cli.getInt("seed");

    std::vector<std::size_t> charged_counts;
    {
        std::string text = cli.getString("charged");
        std::size_t pos = 0;
        while (pos < text.size()) {
            std::size_t next = text.find(',', pos);
            if (next == std::string::npos)
                next = text.size();
            charged_counts.push_back((std::size_t)std::stoul(
                text.substr(pos, next - pos)));
            pos = next + 1;
        }
    }

    ecc::LinearCode code = [&] {
        if (seed == 0)
            return ecc::canonicalSecCode(k);
        util::Rng rng(seed);
        return ecc::randomSecCode(k, rng);
    }();

    if (cli.getBool("print-code"))
        std::fprintf(stderr, "H = [P | I]:\n%s", code.toString().c_str());

    const auto patterns = chargedPatternUnion(k, charged_counts);

    const std::string trace_path = cli.getString("trace-out");
    if (!trace_path.empty()) {
        const char vendor = cli.getString("vendor").at(0);
        dram::ChipConfig config =
            dram::makeVendorConfig(vendor, k, seed ? seed : 1);
        config.code = code; // keep the secret chosen above
        config.map.rows = (std::size_t)cli.getInt("rows");
        config.iidErrors = true;
        config.threads = (std::size_t)cli.getInt("threads");
        dram::SimulatedChip chip(config);

        MeasureConfig measure;
        for (double ber : {0.05, 0.15, 0.3})
            measure.pausesSeconds.push_back(
                chip.retentionModel().pauseForBitErrorRate(ber, 80.0));
        measure.repeatsPerPause = (std::size_t)cli.getInt("repeats");
        measure.thresholdProbability = 1e-4;

        dram::TraceWriteOptions trace_options;
        const auto format =
            dram::parseTraceFormat(cli.getString("trace-format"));
        if (!format)
            util::fatal("--trace-format must be v1 or v2, not '%s'",
                        cli.getString("trace-format").c_str());
        trace_options.format = *format;

        std::ofstream out(trace_path,
                          std::ios::binary | std::ios::trunc);
        if (!out)
            util::fatal("cannot open trace file '%s' for writing",
                        trace_path.c_str());
        const ProfileCounts counts = recordProfileTrace(
            chip, patterns, measure, dram::trueCellWords(chip), out,
            trace_options);
        std::fprintf(stderr,
                     "recorded %llu observations over %zu patterns "
                     "to %s (%s)\n",
                     (unsigned long long)counts.totalObservations(),
                     patterns.size(), trace_path.c_str(),
                     dram::traceFormatName(trace_options.format));
        return 0;
    }

    const auto profile = exhaustiveProfile(code, patterns);
    std::cout << serializeProfile(profile);
    return 0;
}
