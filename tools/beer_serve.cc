/**
 * @file
 * Fleet-scale BEER recovery service daemon.
 *
 * Runs svc::RecoveryService behind the minimal HTTP/1.1 adapter so a
 * fleet of testing hosts can submit miscorrection profiles and poll
 * for recovered ECC functions without linking against the library:
 *
 *     beer_serve --port 8117 --cache-file /var/lib/beer/fp.cache &
 *     curl -s --data-binary @chip0.profile \
 *         http://127.0.0.1:8117/v1/jobs          # -> {"job_id":1}
 *     curl -s http://127.0.0.1:8117/v1/jobs/1    # poll until "done"
 *     curl -s http://127.0.0.1:8117/health       # observability
 *
 * SIGINT/SIGTERM shut down gracefully: the accept loop exits, in-
 * flight jobs drain, and the fingerprint cache is flushed to disk so
 * the next start answers repeat profiles without a SAT solve. A
 * second signal force-kills (util::installShutdownHandler()).
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "svc/io.hh"

#include "svc/http.hh"
#include "svc/service.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/signal.hh"

int
main(int argc, char **argv)
{
    using namespace beer;

    util::Cli cli("Serve ECC recovery over HTTP with a fingerprint "
                  "cache and sharded job scheduler");
    cli.addOption("host", "127.0.0.1", "bind address");
    cli.addOption("port", "8117", "bind port (0 = ephemeral)");
    cli.addOption("threads", "0",
                  "recovery worker threads (0 = hardware "
                  "concurrency)");
    cli.addOption("max-queued", "256",
                  "bounded job queue; beyond it submissions get 429");
    cli.addOption("cache-file", "",
                  "fingerprint cache persistence path (loaded on "
                  "start, flushed on shutdown)");
    cli.addOption("cache-capacity", "256",
                  "max fingerprint cache entries (LRU eviction)");
    cli.addOption("near-threshold", "0.5",
                  "min shared-profile fraction for a near-match "
                  "warm start");
    cli.addOption("max-solutions", "16",
                  "per-job solution cap (0 = enumerate all)");
    cli.addFlag("reject-legacy",
                "reject version-1 (version-less) profile payloads "
                "instead of migrating them");
    cli.addOption("journal-file", "",
                  "append-only job journal; unfinished jobs are "
                  "re-submitted under their original ids on restart");
    cli.addOption("retries", "0",
                  "automatic retries for a failed job (exhausting "
                  "them quarantines the job)");
    cli.addOption("retry-backoff", "0",
                  "exponential backoff base between retries, seconds");
    cli.addOption("job-deadline", "0",
                  "seconds a queued job may wait before it is failed "
                  "unrun (0 = forever)");
    cli.addOption("job-start-delay", "0",
                  "test hook: sleep this many seconds at each job "
                  "start (exercises queue deadlines and kill tests)");
    cli.addOption("journal-max-bytes", "262144",
                  "compact the journal (atomic rewrite keeping only "
                  "unfinished jobs) past this size (0 = never)");
    cli.addOption("chaos-seed", "0",
                  "enable deterministic file/socket fault injection "
                  "with this seed (0 = no chaos)");
    cli.addOption("chaos-enospc-after", "0",
                  "chaos: journal/cache writes start failing with "
                  "ENOSPC after this many writes");
    cli.addOption("chaos-enospc-window", "0",
                  "chaos: how many writes the ENOSPC outage lasts");
    cli.addOption("chaos-torn-every", "0",
                  "chaos: every Nth file write is torn (half the "
                  "bytes land, full success reported)");
    cli.addOption("chaos-short-write-rate", "0",
                  "chaos: probability a file write is short");
    cli.addOption("chaos-accept-failures", "0",
                  "chaos: fail the first N accepts with ECONNABORTED "
                  "(accept storm)");
    cli.addOption("chaos-reset-every", "0",
                  "chaos: every Nth HTTP send fails with ECONNRESET");
    cli.parse(argc, argv);

    svc::ServiceConfig config;
    config.threads = (std::size_t)cli.getInt("threads");
    config.maxQueuedJobs = (std::size_t)cli.getInt("max-queued");
    config.cache.path = cli.getString("cache-file");
    config.cache.capacity = (std::size_t)cli.getInt("cache-capacity");
    config.cache.nearMatchThreshold = cli.getDouble("near-threshold");
    config.solver.maxSolutions =
        (std::size_t)cli.getInt("max-solutions");
    config.rejectLegacyPayloads = cli.getBool("reject-legacy");
    config.journalPath = cli.getString("journal-file");
    config.jobPolicy.maxRetries = (std::size_t)cli.getInt("retries");
    config.jobPolicy.backoffBaseSeconds =
        cli.getDouble("retry-backoff");
    config.jobPolicy.deadlineSeconds = cli.getDouble("job-deadline");
    const double start_delay = cli.getDouble("job-start-delay");
    if (start_delay > 0.0)
        config.onJobStart = [start_delay](svc::JobId) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(start_delay));
        };
    config.journalMaxBytes =
        (std::size_t)cli.getInt("journal-max-bytes");

    // Chaos injection: the service runs against deliberately faulty
    // file and socket I/O, exercising the same seams the differential
    // tests use — CI's service-chaos smoke drives a real daemon this
    // way and asserts no job is lost or duplicated.
    std::unique_ptr<svc::ChaosFileIo> chaos_file;
    std::unique_ptr<svc::ChaosSocketIo> chaos_socket;
    const std::uint64_t chaos_seed =
        (std::uint64_t)cli.getInt("chaos-seed");
    if (chaos_seed != 0) {
        svc::ChaosFileConfig file_chaos;
        file_chaos.seed = chaos_seed;
        file_chaos.enospcAfterWrites =
            (std::uint64_t)cli.getInt("chaos-enospc-after");
        file_chaos.enospcWindow =
            (std::uint64_t)cli.getInt("chaos-enospc-window");
        file_chaos.tornEveryWrites =
            (std::uint64_t)cli.getInt("chaos-torn-every");
        file_chaos.shortWriteRate =
            cli.getDouble("chaos-short-write-rate");
        chaos_file = std::make_unique<svc::ChaosFileIo>(file_chaos);
        config.fileIo = chaos_file.get();

        svc::ChaosSocketConfig socket_chaos;
        socket_chaos.seed = chaos_seed + 1;
        socket_chaos.acceptFailures =
            (std::uint64_t)cli.getInt("chaos-accept-failures");
        socket_chaos.resetEverySends =
            (std::uint64_t)cli.getInt("chaos-reset-every");
        chaos_socket =
            std::make_unique<svc::ChaosSocketIo>(socket_chaos);
    }

    util::installShutdownHandler();

    svc::RecoveryService service(config);
    svc::HttpConfig http;
    http.host = cli.getString("host");
    http.port = (std::uint16_t)cli.getInt("port");
    http.socketIo = chaos_socket.get();
    svc::HttpServer server(service, http);
    if (!server.start())
        util::fatal("cannot bind %s:%u", http.host.c_str(),
                    (unsigned)http.port);

    const svc::FingerprintCacheStats cache = service.health().cache;
    std::fprintf(stderr,
                 "beer_serve: listening on %s:%u (api v%d, %zu "
                 "cached fingerprints)\n",
                 http.host.c_str(), (unsigned)server.port(),
                 svc::kApiVersion, cache.entries);
    server.serve();

    std::fprintf(stderr,
                 "beer_serve: shutting down (draining jobs, "
                 "syncing journal, flushing cache)...\n");
    // shutdown() drains, fsyncs the journal and flushes the cache
    // exactly once (its stopped-flag exchange guards re-entry); the
    // service destructor's own shutdown() call then no-ops, so there
    // is no double flush to race a second SIGTERM against.
    service.shutdown();
    const svc::HealthReport health = service.health();
    std::fprintf(stderr,
                 "beer_serve: served %llu jobs (%llu SAT solves, "
                 "%llu exact cache hits, %llu near hits, %llu "
                 "retries, %llu quarantined, %llu journal replays, "
                 "%llu journal compactions)\n",
                 (unsigned long long)health.scheduler.completed,
                 (unsigned long long)health.satSolves,
                 (unsigned long long)health.cache.exactHits,
                 (unsigned long long)health.cache.nearHits,
                 (unsigned long long)health.retries,
                 (unsigned long long)health.quarantined,
                 (unsigned long long)health.journalReplays,
                 (unsigned long long)health.journal.compactions);
    // A drain that leaves unwell jobs behind is not a clean exit;
    // quarantined (a chip repeatedly failing — needs a human) is
    // distinguished from plain failures so init systems and CI
    // wrappers can route the two differently.
    if (health.jobStates.quarantined) {
        std::fprintf(stderr,
                     "beer_serve: %llu job(s) quarantined\n",
                     (unsigned long long)health.jobStates.quarantined);
        return 2;
    }
    if (health.jobStates.failed) {
        std::fprintf(stderr, "beer_serve: %llu job(s) failed\n",
                     (unsigned long long)health.jobStates.failed);
        return 1;
    }
    return 0;
}
