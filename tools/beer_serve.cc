/**
 * @file
 * Fleet-scale BEER recovery service daemon.
 *
 * Runs svc::RecoveryService behind the minimal HTTP/1.1 adapter so a
 * fleet of testing hosts can submit miscorrection profiles and poll
 * for recovered ECC functions without linking against the library:
 *
 *     beer_serve --port 8117 --cache-file /var/lib/beer/fp.cache &
 *     curl -s --data-binary @chip0.profile \
 *         http://127.0.0.1:8117/v1/jobs          # -> {"job_id":1}
 *     curl -s http://127.0.0.1:8117/v1/jobs/1    # poll until "done"
 *     curl -s http://127.0.0.1:8117/health       # observability
 *
 * SIGINT/SIGTERM shut down gracefully: the accept loop exits, in-
 * flight jobs drain, and the fingerprint cache is flushed to disk so
 * the next start answers repeat profiles without a SAT solve. A
 * second signal force-kills (util::installShutdownHandler()).
 */

#include <chrono>
#include <cstdio>
#include <thread>

#include "svc/http.hh"
#include "svc/service.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/signal.hh"

int
main(int argc, char **argv)
{
    using namespace beer;

    util::Cli cli("Serve ECC recovery over HTTP with a fingerprint "
                  "cache and sharded job scheduler");
    cli.addOption("host", "127.0.0.1", "bind address");
    cli.addOption("port", "8117", "bind port (0 = ephemeral)");
    cli.addOption("threads", "0",
                  "recovery worker threads (0 = hardware "
                  "concurrency)");
    cli.addOption("max-queued", "256",
                  "bounded job queue; beyond it submissions get 429");
    cli.addOption("cache-file", "",
                  "fingerprint cache persistence path (loaded on "
                  "start, flushed on shutdown)");
    cli.addOption("cache-capacity", "256",
                  "max fingerprint cache entries (LRU eviction)");
    cli.addOption("near-threshold", "0.5",
                  "min shared-profile fraction for a near-match "
                  "warm start");
    cli.addOption("max-solutions", "16",
                  "per-job solution cap (0 = enumerate all)");
    cli.addFlag("reject-legacy",
                "reject version-1 (version-less) profile payloads "
                "instead of migrating them");
    cli.addOption("journal-file", "",
                  "append-only job journal; unfinished jobs are "
                  "re-submitted under their original ids on restart");
    cli.addOption("retries", "0",
                  "automatic retries for a failed job (exhausting "
                  "them quarantines the job)");
    cli.addOption("retry-backoff", "0",
                  "exponential backoff base between retries, seconds");
    cli.addOption("job-deadline", "0",
                  "seconds a queued job may wait before it is failed "
                  "unrun (0 = forever)");
    cli.addOption("job-start-delay", "0",
                  "test hook: sleep this many seconds at each job "
                  "start (exercises queue deadlines and kill tests)");
    cli.parse(argc, argv);

    svc::ServiceConfig config;
    config.threads = (std::size_t)cli.getInt("threads");
    config.maxQueuedJobs = (std::size_t)cli.getInt("max-queued");
    config.cache.path = cli.getString("cache-file");
    config.cache.capacity = (std::size_t)cli.getInt("cache-capacity");
    config.cache.nearMatchThreshold = cli.getDouble("near-threshold");
    config.solver.maxSolutions =
        (std::size_t)cli.getInt("max-solutions");
    config.rejectLegacyPayloads = cli.getBool("reject-legacy");
    config.journalPath = cli.getString("journal-file");
    config.jobPolicy.maxRetries = (std::size_t)cli.getInt("retries");
    config.jobPolicy.backoffBaseSeconds =
        cli.getDouble("retry-backoff");
    config.jobPolicy.deadlineSeconds = cli.getDouble("job-deadline");
    const double start_delay = cli.getDouble("job-start-delay");
    if (start_delay > 0.0)
        config.onJobStart = [start_delay](svc::JobId) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(start_delay));
        };

    util::installShutdownHandler();

    svc::RecoveryService service(config);
    svc::HttpConfig http;
    http.host = cli.getString("host");
    http.port = (std::uint16_t)cli.getInt("port");
    svc::HttpServer server(service, http);
    if (!server.start())
        util::fatal("cannot bind %s:%u", http.host.c_str(),
                    (unsigned)http.port);

    const svc::FingerprintCacheStats cache = service.health().cache;
    std::fprintf(stderr,
                 "beer_serve: listening on %s:%u (api v%d, %zu "
                 "cached fingerprints)\n",
                 http.host.c_str(), (unsigned)server.port(),
                 svc::kApiVersion, cache.entries);
    server.serve();

    std::fprintf(stderr,
                 "beer_serve: shutting down (draining jobs, "
                 "flushing cache)...\n");
    service.shutdown();
    const svc::HealthReport health = service.health();
    std::fprintf(stderr,
                 "beer_serve: served %llu jobs (%llu SAT solves, "
                 "%llu exact cache hits, %llu near hits, %llu "
                 "retries, %llu quarantined, %llu journal replays)\n",
                 (unsigned long long)health.scheduler.completed,
                 (unsigned long long)health.satSolves,
                 (unsigned long long)health.cache.exactHits,
                 (unsigned long long)health.cache.nearHits,
                 (unsigned long long)health.retries,
                 (unsigned long long)health.quarantined,
                 (unsigned long long)health.journalReplays);
    // A drain that leaves failed or quarantined jobs behind is not a
    // clean exit: surface it to init systems and CI wrappers.
    const std::uint64_t unwell =
        health.jobStates.failed + health.jobStates.quarantined;
    if (unwell) {
        std::fprintf(stderr,
                     "beer_serve: %llu job(s) failed or quarantined\n",
                     (unsigned long long)unwell);
        return 1;
    }
    return 0;
}
