/**
 * @file
 * Command-line BEER solver: read a miscorrection profile from a file
 * (or stdin) — or re-measure one from a recorded operation trace —
 * and enumerate every ECC function consistent with it.
 *
 * This mirrors the tool the paper released for applying BEER to
 * experimental data from real DRAM chips. Profile format (see
 * beer/profile.hh):
 *
 *     # comment
 *     k 16
 *     0 0111011101110111        <- 1-CHARGED pattern, bit 0
 *     0,3 0110011101110110      <- 2-CHARGED pattern, bits 0 and 3
 *
 * Each bitmap bit j is '1' iff a miscorrection was observed at data
 * bit j under that pattern (after threshold filtering).
 *
 * With --trace, the input is instead a raw measurement recording in
 * the dram/trace.hh format (e.g. from beer_profile_gen --trace-out or
 * beer::recordProfileTrace()): the measurement loop replays against
 * the recorded reads and the threshold filter runs on the replayed
 * counts, so no pre-thresholded profile file is needed.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>

#include "beer/measure.hh"
#include "beer/profile.hh"
#include "beer/solver.hh"
#include "dram/trace.hh"
#include "ecc/hamming.hh"
#include "sat/dimacs.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

using namespace beer;

namespace
{

void
writeStatsJson(const std::string &path, const MiscorrectionProfile &profile,
               std::size_t parity, const BeerSolveResult &result,
               const sat::SolverStats &s, double wall_seconds)
{
    std::ofstream out(path);
    if (!out)
        util::fatal("cannot open stats file '%s'", path.c_str());
    out << "{\n"
        << "  \"k\": " << profile.k << ",\n"
        << "  \"parity_bits\": " << parity << ",\n"
        << "  \"patterns\": " << profile.patterns.size() << ",\n"
        << "  \"solutions\": " << result.solutions.size() << ",\n"
        << "  \"complete\": " << (result.complete ? "true" : "false")
        << ",\n"
        << "  \"wall_seconds\": " << wall_seconds << ",\n"
        // Schema-compatible with the service's per-job JSON: solver
        // seconds hidden behind concurrent measurement. A profile
        // solve has no measurement phase to overlap with, so this is
        // 0 here; session-driven recoveries (beer_serve submitSession,
        // bench/session_speedup --pipeline) report real overlap.
        << "  \"overlap_seconds\": 0,\n"
        << "  \"memory_bytes\": " << result.memoryBytes << ",\n"
        << "  \"solver\": {\n"
        << "    \"decisions\": " << s.decisions << ",\n"
        << "    \"propagations\": " << s.propagations << ",\n"
        << "    \"conflicts\": " << s.conflicts << ",\n"
        << "    \"restarts\": " << s.restarts << ",\n"
        << "    \"learned_clauses\": " << s.learnedClauses << ",\n"
        << "    \"deleted_clauses\": " << s.deletedClauses << ",\n"
        << "    \"added_clauses\": " << s.addedClauses << ",\n"
        << "    \"arena_bytes\": " << s.arenaBytes << "\n"
        << "  }\n"
        << "}\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    util::Cli cli("Solve for the on-die ECC function(s) matching a "
                  "measured miscorrection profile");
    cli.addOption("profile", "-",
                  "profile file path ('-' reads stdin)");
    cli.addOption("trace", "",
                  "measure from a recorded operation trace instead of "
                  "reading a profile file");
    cli.addOption("trace-format", "auto",
                  "expected --trace format: auto (sniff), v1, or v2 "
                  "(mismatch is an error)");
    cli.addOption("replay-threads", "1",
                  "worker threads for v2 planar replay counting (0 = "
                  "all hardware threads); counts are identical for "
                  "every value");
    cli.addOption("threshold", "-1",
                  "threshold probability for --trace counts "
                  "(-1 = the threshold recorded in the trace)");
    cli.addOption("parity-bits", "0",
                  "parity-bit count (0 = minimum SEC count for k)");
    cli.addOption("max-solutions", "16",
                  "stop after this many solutions (0 = all)");
    cli.addOption("dimacs-out", "",
                  "export the encoded BEER instance as DIMACS CNF to "
                  "this path (for cross-checking external solvers)");
    cli.addOption("stats-json", "",
                  "write solver statistics and wall time as JSON to "
                  "this path");
    cli.addFlag("no-symmetry-breaking",
                "disable row-order symmetry breaking");
    cli.addFlag("quiet", "print only the solution count");
    cli.parse(argc, argv);

    MiscorrectionProfile profile;
    const std::string trace_path = cli.getString("trace");
    if (!trace_path.empty()) {
        dram::TraceReplayBackend trace(trace_path);
        const std::string expect = cli.getString("trace-format");
        if (expect != "auto") {
            const auto format = dram::parseTraceFormat(expect);
            if (!format)
                util::fatal("--trace-format must be auto, v1, or v2, "
                            "not '%s'",
                            expect.c_str());
            if (trace.format() != *format)
                util::fatal("'%s' is a %s trace, not %s",
                            trace_path.c_str(),
                            dram::traceFormatName(trace.format()),
                            dram::traceFormatName(*format));
        }
        std::optional<util::ThreadPool> pool;
        const auto replay_threads =
            (std::size_t)cli.getInt("replay-threads");
        if (replay_threads != 1)
            pool.emplace(replay_threads);
        const ProfileCounts counts =
            replayProfileTrace(trace, pool ? &*pool : nullptr);
        double threshold = cli.getDouble("threshold");
        if (threshold < 0.0)
            threshold =
                traceMeasureConfig(trace).thresholdProbability;
        std::fprintf(stderr,
                     "replayed %zu trace operations: %zu patterns, "
                     "threshold %g\n",
                     trace.totalOps(), counts.patterns.size(),
                     threshold);
        profile = counts.threshold(threshold);
    } else if (cli.getString("profile") == "-") {
        profile = parseProfile(std::cin);
    } else {
        const std::string path = cli.getString("profile");
        std::ifstream in(path);
        if (!in)
            util::fatal("cannot open profile file '%s'", path.c_str());
        profile = parseProfile(in);
    }

    std::size_t parity = (std::size_t)cli.getInt("parity-bits");
    if (parity == 0)
        parity = ecc::parityBitsForDataBits(profile.k);

    BeerSolverConfig config;
    config.maxSolutions = (std::size_t)cli.getInt("max-solutions");
    config.symmetryBreaking = !cli.getBool("no-symmetry-breaking");

    std::fprintf(stderr,
                 "solving: k=%zu, parity=%zu, %zu patterns...\n",
                 profile.k, parity, profile.patterns.size());

    const auto wall_start = std::chrono::steady_clock::now();
    IncrementalSolver incremental(profile.k, parity, config);
    incremental.addProfile(profile);

    const std::string dimacs_path = cli.getString("dimacs-out");
    if (!dimacs_path.empty()) {
        // Export before enumeration so the CNF is the pure instance,
        // free of blocking clauses and their group guards.
        std::ofstream out(dimacs_path);
        if (!out)
            util::fatal("cannot open DIMACS file '%s'",
                        dimacs_path.c_str());
        printDimacs(sat::extractCnf(incremental.satSolver()), out);
        std::fprintf(stderr, "wrote DIMACS instance to %s\n",
                     dimacs_path.c_str());
    }

    const BeerSolveResult result = incremental.solve();
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    const std::string stats_path = cli.getString("stats-json");
    if (!stats_path.empty())
        writeStatsJson(stats_path, profile, parity, result,
                       incremental.satSolver().stats(), wall_seconds);

    if (cli.getBool("quiet")) {
        std::printf("%zu%s\n", result.solutions.size(),
                    result.complete ? "" : "+");
        return result.solutions.empty() ? 1 : 0;
    }

    if (result.solutions.empty()) {
        std::printf("no ECC function matches this profile "
                    "(inconsistent measurement?)\n");
        return 1;
    }

    std::printf("%zu solution(s)%s:\n\n", result.solutions.size(),
                result.complete ? "" : " (enumeration truncated)");
    for (std::size_t i = 0; i < result.solutions.size(); ++i) {
        std::printf("--- solution %zu: H = [P | I] ---\n%s\n", i,
                    result.solutions[i].toString().c_str());
    }
    if (result.unique())
        std::printf("The ECC function is uniquely identified.\n");
    else if (result.complete)
        std::printf("Multiple candidates: extend the measurement with "
                    "2-CHARGED patterns (Section 4.2.4).\n");
    return 0;
}
