/**
 * @file
 * Command-line BEER solver: read a miscorrection profile from a file
 * (or stdin) — or re-measure one from a recorded operation trace —
 * and enumerate every ECC function consistent with it.
 *
 * This mirrors the tool the paper released for applying BEER to
 * experimental data from real DRAM chips. Profile format (see
 * beer/profile.hh):
 *
 *     # comment
 *     k 16
 *     0 0111011101110111        <- 1-CHARGED pattern, bit 0
 *     0,3 0110011101110110      <- 2-CHARGED pattern, bits 0 and 3
 *
 * Each bitmap bit j is '1' iff a miscorrection was observed at data
 * bit j under that pattern (after threshold filtering).
 *
 * With --trace, the input is instead a raw measurement recording in
 * the dram/trace.hh format (e.g. from beer_profile_gen --trace-out or
 * beer::recordProfileTrace()): the measurement loop replays against
 * the recorded reads and the threshold filter runs on the replayed
 * counts, so no pre-thresholded profile file is needed.
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "beer/measure.hh"
#include "beer/profile.hh"
#include "beer/solver.hh"
#include "dram/trace.hh"
#include "ecc/hamming.hh"
#include "util/cli.hh"
#include "util/logging.hh"

using namespace beer;

int
main(int argc, char **argv)
{
    util::Cli cli("Solve for the on-die ECC function(s) matching a "
                  "measured miscorrection profile");
    cli.addOption("profile", "-",
                  "profile file path ('-' reads stdin)");
    cli.addOption("trace", "",
                  "measure from a recorded operation trace instead of "
                  "reading a profile file");
    cli.addOption("threshold", "-1",
                  "threshold probability for --trace counts "
                  "(-1 = the threshold recorded in the trace)");
    cli.addOption("parity-bits", "0",
                  "parity-bit count (0 = minimum SEC count for k)");
    cli.addOption("max-solutions", "16",
                  "stop after this many solutions (0 = all)");
    cli.addFlag("no-symmetry-breaking",
                "disable row-order symmetry breaking");
    cli.addFlag("quiet", "print only the solution count");
    cli.parse(argc, argv);

    MiscorrectionProfile profile;
    const std::string trace_path = cli.getString("trace");
    if (!trace_path.empty()) {
        dram::TraceReplayBackend trace(trace_path);
        const ProfileCounts counts = replayProfileTrace(trace);
        double threshold = cli.getDouble("threshold");
        if (threshold < 0.0)
            threshold =
                traceMeasureConfig(trace).thresholdProbability;
        std::fprintf(stderr,
                     "replayed %zu trace operations: %zu patterns, "
                     "threshold %g\n",
                     trace.totalOps(), counts.patterns.size(),
                     threshold);
        profile = counts.threshold(threshold);
    } else if (cli.getString("profile") == "-") {
        profile = parseProfile(std::cin);
    } else {
        const std::string path = cli.getString("profile");
        std::ifstream in(path);
        if (!in)
            util::fatal("cannot open profile file '%s'", path.c_str());
        profile = parseProfile(in);
    }

    std::size_t parity = (std::size_t)cli.getInt("parity-bits");
    if (parity == 0)
        parity = ecc::parityBitsForDataBits(profile.k);

    BeerSolverConfig config;
    config.maxSolutions = (std::size_t)cli.getInt("max-solutions");
    config.symmetryBreaking = !cli.getBool("no-symmetry-breaking");

    std::fprintf(stderr,
                 "solving: k=%zu, parity=%zu, %zu patterns...\n",
                 profile.k, parity, profile.patterns.size());
    const BeerSolveResult result =
        solveForEccFunction(profile, parity, config);

    if (cli.getBool("quiet")) {
        std::printf("%zu%s\n", result.solutions.size(),
                    result.complete ? "" : "+");
        return result.solutions.empty() ? 1 : 0;
    }

    if (result.solutions.empty()) {
        std::printf("no ECC function matches this profile "
                    "(inconsistent measurement?)\n");
        return 1;
    }

    std::printf("%zu solution(s)%s:\n\n", result.solutions.size(),
                result.complete ? "" : " (enumeration truncated)");
    for (std::size_t i = 0; i < result.solutions.size(); ++i) {
        std::printf("--- solution %zu: H = [P | I] ---\n%s\n", i,
                    result.solutions[i].toString().c_str());
    }
    if (result.unique())
        std::printf("The ECC function is uniquely identified.\n");
    else if (result.complete)
        std::printf("Multiple candidates: extend the measurement with "
                    "2-CHARGED patterns (Section 4.2.4).\n");
    return 0;
}
