/**
 * @file
 * Command-line BEER solver: read a miscorrection profile from a file
 * (or stdin) and enumerate every ECC function consistent with it.
 *
 * This mirrors the tool the paper released for applying BEER to
 * experimental data from real DRAM chips. Profile format (see
 * beer/profile.hh):
 *
 *     # comment
 *     k 16
 *     0 0111011101110111        <- 1-CHARGED pattern, bit 0
 *     0,3 0110011101110110      <- 2-CHARGED pattern, bits 0 and 3
 *
 * Each bitmap bit j is '1' iff a miscorrection was observed at data
 * bit j under that pattern (after threshold filtering).
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "beer/profile.hh"
#include "beer/solver.hh"
#include "ecc/hamming.hh"
#include "util/cli.hh"
#include "util/logging.hh"

using namespace beer;

int
main(int argc, char **argv)
{
    util::Cli cli("Solve for the on-die ECC function(s) matching a "
                  "measured miscorrection profile");
    cli.addOption("profile", "-",
                  "profile file path ('-' reads stdin)");
    cli.addOption("parity-bits", "0",
                  "parity-bit count (0 = minimum SEC count for k)");
    cli.addOption("max-solutions", "16",
                  "stop after this many solutions (0 = all)");
    cli.addFlag("no-symmetry-breaking",
                "disable row-order symmetry breaking");
    cli.addFlag("quiet", "print only the solution count");
    cli.parse(argc, argv);

    MiscorrectionProfile profile;
    const std::string path = cli.getString("profile");
    if (path == "-") {
        profile = parseProfile(std::cin);
    } else {
        std::ifstream in(path);
        if (!in)
            util::fatal("cannot open profile file '%s'", path.c_str());
        profile = parseProfile(in);
    }

    std::size_t parity = (std::size_t)cli.getInt("parity-bits");
    if (parity == 0)
        parity = ecc::parityBitsForDataBits(profile.k);

    BeerSolverConfig config;
    config.maxSolutions = (std::size_t)cli.getInt("max-solutions");
    config.symmetryBreaking = !cli.getBool("no-symmetry-breaking");

    std::fprintf(stderr,
                 "solving: k=%zu, parity=%zu, %zu patterns...\n",
                 profile.k, parity, profile.patterns.size());
    const BeerSolveResult result =
        solveForEccFunction(profile, parity, config);

    if (cli.getBool("quiet")) {
        std::printf("%zu%s\n", result.solutions.size(),
                    result.complete ? "" : "+");
        return result.solutions.empty() ? 1 : 0;
    }

    if (result.solutions.empty()) {
        std::printf("no ECC function matches this profile "
                    "(inconsistent measurement?)\n");
        return 1;
    }

    std::printf("%zu solution(s)%s:\n\n", result.solutions.size(),
                result.complete ? "" : " (enumeration truncated)");
    for (std::size_t i = 0; i < result.solutions.size(); ++i) {
        std::printf("--- solution %zu: H = [P | I] ---\n%s\n", i,
                    result.solutions[i].toString().c_str());
    }
    if (result.unique())
        std::printf("The ECC function is uniquely identified.\n");
    else if (result.complete)
        std::printf("Multiple candidates: extend the measurement with "
                    "2-CHARGED patterns (Section 4.2.4).\n");
    return 0;
}
