/**
 * @file
 * Convert measurement operation traces between the v1 text and v2
 * binary columnar formats (dram/trace.hh). Conversion is lossless at
 * the operation level — both files replay bit-identically — and
 * v1 -> v2 -> v1 reproduces recorder-produced v1 files byte for byte:
 *
 *     beer_profile_gen --k 16 --vendor A --trace-out m.trace \
 *         --trace-format v1
 *     beer_trace_convert --in m.trace --out m.trace2              # v2
 *     beer_trace_convert --in m.trace2 --out m.trace.rt --format v1
 *     cmp m.trace m.trace.rt
 *
 * --verify replays both files through the measurement loop and
 * cross-checks the profile counts, so a conversion can be trusted
 * before the original is archived or deleted.
 */

#include <cstdio>
#include <cstring>

#include "beer/measure.hh"
#include "dram/trace.hh"
#include "util/cli.hh"
#include "util/logging.hh"

using namespace beer;

namespace
{

/** Exact comparison of two replayed profile-count sets. */
bool
sameCounts(const ProfileCounts &a, const ProfileCounts &b)
{
    return a.k == b.k && a.patterns == b.patterns &&
           a.errorCounts == b.errorCounts &&
           a.wordsTested == b.wordsTested &&
           a.disagreements == b.disagreements &&
           a.votesSpent == b.votesSpent;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    util::Cli cli("Convert a BEER measurement trace between the v1 "
                  "text and v2 binary formats");
    cli.addOption("in", "", "input trace path (format is sniffed)");
    cli.addOption("out", "", "output trace path");
    cli.addOption("format", "v2", "output format: v1 or v2");
    cli.addFlag("no-compress",
                "store v2 read frames raw instead of sparse-encoded");
    cli.addFlag("verify",
                "replay input and output through the measurement loop "
                "and require bit-identical profile counts");
    cli.parse(argc, argv);

    const std::string in_path = cli.getString("in");
    const std::string out_path = cli.getString("out");
    if (in_path.empty() || out_path.empty())
        util::fatal("--in and --out are both required");

    dram::TraceWriteOptions options;
    const auto format = dram::parseTraceFormat(cli.getString("format"));
    if (!format)
        util::fatal("--format must be v1 or v2, not '%s'",
                    cli.getString("format").c_str());
    options.format = *format;
    options.compressFrames = !cli.getBool("no-compress");

    const dram::TraceConvertStats stats =
        dram::convertTraceFile(in_path, out_path, options);
    std::fprintf(stderr,
                 "%s %s (%ju bytes) -> %s %s (%ju bytes): %zu ops, "
                 "%.2fx size\n",
                 dram::traceFormatName(stats.from), in_path.c_str(),
                 (std::uintmax_t)stats.bytesIn,
                 dram::traceFormatName(stats.to), out_path.c_str(),
                 (std::uintmax_t)stats.bytesOut, stats.ops,
                 stats.bytesOut
                     ? (double)stats.bytesIn / (double)stats.bytesOut
                     : 0.0);

    if (cli.getBool("verify")) {
        dram::TraceReplayBackend original(in_path);
        dram::TraceReplayBackend converted(out_path);
        const ProfileCounts a = replayProfileTrace(original);
        const ProfileCounts b = replayProfileTrace(converted);
        if (!sameCounts(a, b)) {
            std::fprintf(stderr,
                         "verify FAILED: replayed profile counts "
                         "differ between input and output\n");
            return 1;
        }
        std::fprintf(stderr,
                     "verify OK: both traces replay to identical "
                     "profile counts (%llu observations)\n",
                     (unsigned long long)a.totalObservations());
    }
    return 0;
}
